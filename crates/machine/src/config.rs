//! Whole-machine configuration.

use crate::tier::{TierSet, TierSpec};
use hmsim_common::{ByteSize, HmError, HmResult, Nanos};

/// How the on-package MCDRAM is exposed to software.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemoryMode {
    /// MCDRAM occupies its own part of the physical address space; software
    /// (numactl, memkind, the framework) decides what lives there.
    Flat,
    /// MCDRAM acts as a direct-mapped memory-side cache in front of DDR; the
    /// placement is transparent to software.
    Cache,
    /// A hybrid split: `cache_fraction` of the MCDRAM acts as cache, the rest
    /// is flat-addressable.
    Hybrid {
        /// Fraction (0..=1) of MCDRAM used as cache.
        cache_fraction_percent: u8,
    },
}

impl MemoryMode {
    /// Fraction of MCDRAM behaving as a memory-side cache.
    pub fn cache_fraction(self) -> f64 {
        match self {
            MemoryMode::Flat => 0.0,
            MemoryMode::Cache => 1.0,
            MemoryMode::Hybrid {
                cache_fraction_percent,
            } => f64::from(cache_fraction_percent.min(100)) / 100.0,
        }
    }
}

/// On-die mesh clustering mode. The paper uses quadrant mode; the setting
/// mainly nudges effective latencies in the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClusterMode {
    /// All-to-all: no affinity between tile, tag directory and memory.
    AllToAll,
    /// Quadrant: directory and memory in the same quadrant (paper default).
    Quadrant,
    /// SNC-4: exposed as 4 NUMA domains.
    Snc4,
}

impl ClusterMode {
    /// Multiplicative latency factor relative to quadrant mode.
    pub fn latency_factor(self) -> f64 {
        match self {
            ClusterMode::AllToAll => 1.10,
            ClusterMode::Quadrant => 1.0,
            ClusterMode::Snc4 => 0.97,
        }
    }
}

/// Complete description of the simulated node.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads per core (SMT).
    pub threads_per_core: u32,
    /// Core frequency in Hz.
    pub frequency_hz: f64,
    /// Retired instructions per cycle per core for scalar-ish HPC code.
    pub ipc: f64,
    /// Cache line size in bytes.
    pub line_size: u64,
    /// Per-core L1 data cache size.
    pub l1_size: ByteSize,
    /// L1 associativity.
    pub l1_ways: u32,
    /// L1 hit latency.
    pub l1_latency: Nanos,
    /// Per-tile L2 (the LLC on KNL) size available to one core.
    pub l2_size: ByteSize,
    /// L2 associativity.
    pub l2_ways: u32,
    /// L2 hit latency.
    pub l2_latency: Nanos,
    /// Memory tiers.
    pub tiers: TierSet,
    /// MCDRAM exposure mode.
    pub memory_mode: MemoryMode,
    /// Mesh clustering mode.
    pub cluster_mode: ClusterMode,
    /// Memory-level parallelism: outstanding misses one core can sustain,
    /// used to convert per-miss latencies into throughput.
    pub mlp: f64,
    /// Efficiency factor (0..1] applied to MCDRAM bandwidth when it operates
    /// as a cache (tag checks, transfer amplification on misses).
    pub cache_mode_bw_efficiency: f64,
    /// Extra latency paid by a cache-mode miss that must continue to DDR.
    pub cache_mode_miss_penalty: Nanos,
}

impl MachineConfig {
    /// The Intel Xeon Phi 7250 node used throughout the paper: 68 cores at
    /// 1.40 GHz, 4-way SMT, 32 KiB L1, 1 MiB L2 per 2-core tile (modelled as
    /// 512 KiB per core), 96 GiB DDR + 16 GiB MCDRAM, quadrant clustering.
    pub fn knl_7250() -> MachineConfig {
        MachineConfig {
            cores: 68,
            threads_per_core: 4,
            frequency_hz: 1.40e9,
            ipc: 1.7,
            line_size: 64,
            l1_size: ByteSize::from_kib(32),
            l1_ways: 8,
            l1_latency: Nanos(2.9),
            l2_size: ByteSize::from_kib(512),
            l2_ways: 16,
            l2_latency: Nanos(14.0),
            tiers: TierSet::knl(),
            memory_mode: MemoryMode::Flat,
            cluster_mode: ClusterMode::Quadrant,
            mlp: 10.0,
            cache_mode_bw_efficiency: 0.78,
            cache_mode_miss_penalty: Nanos(115.0),
        }
    }

    /// A small machine useful for fast unit tests: 4 cores, tiny caches,
    /// 1 GiB DDR + 64 MiB MCDRAM.
    pub fn tiny_test() -> MachineConfig {
        let mut ddr = TierSpec::knl_ddr();
        ddr.capacity = ByteSize::from_gib(1);
        let mut mc = TierSpec::knl_mcdram();
        mc.capacity = ByteSize::from_mib(64);
        MachineConfig {
            cores: 4,
            threads_per_core: 1,
            frequency_hz: 1.0e9,
            ipc: 1.0,
            line_size: 64,
            l1_size: ByteSize::from_kib(4),
            l1_ways: 4,
            l1_latency: Nanos(2.0),
            l2_size: ByteSize::from_kib(64),
            l2_ways: 8,
            l2_latency: Nanos(10.0),
            tiers: TierSet::new(vec![ddr, mc]).expect("distinct tier ids"),
            memory_mode: MemoryMode::Flat,
            cluster_mode: ClusterMode::Quadrant,
            mlp: 8.0,
            cache_mode_bw_efficiency: 0.78,
            cache_mode_miss_penalty: Nanos(115.0),
        }
    }

    /// Switch the memory mode, returning the modified configuration.
    pub fn with_memory_mode(mut self, mode: MemoryMode) -> Self {
        self.memory_mode = mode;
        self
    }

    /// Total hardware threads.
    pub fn total_threads(&self) -> u32 {
        self.cores * self.threads_per_core
    }

    /// Aggregate scalar instruction throughput of `cores_used` cores, in
    /// instructions per second.
    pub fn instruction_rate(&self, cores_used: u32) -> f64 {
        f64::from(cores_used.min(self.cores)) * self.ipc * self.frequency_hz
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> HmResult<()> {
        if self.cores == 0 {
            return Err(HmError::Config(
                "machine must have at least one core".into(),
            ));
        }
        if self.tiers.is_empty() {
            return Err(HmError::Config(
                "machine must have at least one memory tier".into(),
            ));
        }
        if self.ipc <= 0.0
            || self.frequency_hz <= 0.0
            || self.ipc.is_nan()
            || self.frequency_hz.is_nan()
        {
            return Err(HmError::Config("ipc and frequency must be positive".into()));
        }
        if self.line_size == 0 || !self.line_size.is_power_of_two() {
            return Err(HmError::Config(format!(
                "cache line size must be a power of two, got {}",
                self.line_size
            )));
        }
        if !(0.0..=1.0).contains(&self.cache_mode_bw_efficiency) {
            return Err(HmError::Config(
                "cache_mode_bw_efficiency must be in (0, 1]".into(),
            ));
        }
        Ok(())
    }

    /// The MCDRAM capacity available for *flat-mode* allocations under the
    /// current memory mode (cache mode consumes it all).
    pub fn flat_mcdram_capacity(&self) -> ByteSize {
        let mc = match self.tiers.get(hmsim_common::TierId::MCDRAM) {
            Some(t) => t.capacity,
            None => return ByteSize::ZERO,
        };
        let cache_frac = self.memory_mode.cache_fraction();
        ByteSize::from_bytes(((mc.bytes() as f64) * (1.0 - cache_frac)).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::TierId;

    #[test]
    fn knl_preset_is_valid() {
        let m = MachineConfig::knl_7250();
        m.validate().unwrap();
        assert_eq!(m.cores, 68);
        assert_eq!(m.total_threads(), 272);
        assert_eq!(m.tiers.len(), 2);
        assert_eq!(m.flat_mcdram_capacity(), ByteSize::from_gib(16));
    }

    #[test]
    fn cache_mode_consumes_flat_capacity() {
        let m = MachineConfig::knl_7250().with_memory_mode(MemoryMode::Cache);
        assert_eq!(m.flat_mcdram_capacity(), ByteSize::ZERO);
        let h = MachineConfig::knl_7250().with_memory_mode(MemoryMode::Hybrid {
            cache_fraction_percent: 50,
        });
        assert_eq!(h.flat_mcdram_capacity(), ByteSize::from_gib(8));
    }

    #[test]
    fn memory_mode_cache_fraction() {
        assert_eq!(MemoryMode::Flat.cache_fraction(), 0.0);
        assert_eq!(MemoryMode::Cache.cache_fraction(), 1.0);
        assert_eq!(
            MemoryMode::Hybrid {
                cache_fraction_percent: 25
            }
            .cache_fraction(),
            0.25
        );
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut m = MachineConfig::tiny_test();
        m.cores = 0;
        assert!(m.validate().is_err());

        let mut m = MachineConfig::tiny_test();
        m.line_size = 48;
        assert!(m.validate().is_err());

        let mut m = MachineConfig::tiny_test();
        m.cache_mode_bw_efficiency = 1.5;
        assert!(m.validate().is_err());
    }

    #[test]
    fn instruction_rate_scales_with_cores_and_caps() {
        let m = MachineConfig::knl_7250();
        let one = m.instruction_rate(1);
        let all = m.instruction_rate(68);
        let beyond = m.instruction_rate(1000);
        assert!((all / one - 68.0).abs() < 1e-9);
        assert_eq!(all, beyond);
    }

    #[test]
    fn tiny_config_tiers_are_shrunk() {
        let m = MachineConfig::tiny_test();
        assert_eq!(
            m.tiers.get(TierId::MCDRAM).unwrap().capacity,
            ByteSize::from_mib(64)
        );
    }
}
