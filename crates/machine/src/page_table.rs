//! Page-granularity mapping of the simulated address space to memory tiers.
//!
//! The framework's whole purpose is to decide which pages live in which tier;
//! this structure records that decision and answers "where does this address
//! live" for both engines. `hmem_advisor` packs objects into tiers at page
//! granularity (paper §III step 3), so pages are also our unit here.
//!
//! # Representation
//!
//! Translation sits on the trace engine's LLC-miss path, so the naive
//! `HashMap<Page, TierId>` (one SipHash per miss) was replaced by a two-level
//! page index: the page number splits into a *chunk* (high bits) and a *slot*
//! (low `CHUNK_BITS` bits). Chunks are dense `[u8; CHUNK_PAGES]` arrays —
//! one byte per page, `0` meaning "fall back to the default tier" — reached
//! through a chunk directory keyed by a multiply-shift hash (a few cycles,
//! not SipHash). A lookup is therefore one cheap hash plus one array index;
//! the engine layers a one-entry translation cache (a TLB analogue, keyed by
//! [`PageTable::translation_key`]) on top so consecutive misses to the same
//! page skip even that.

use hmsim_common::{AddressRange, ByteSize, Page, TierId, PAGE_SIZE};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of pages per chunk.
const CHUNK_BITS: u32 = 12;
/// Pages per chunk (4096 pages = 16 MiB of address space, 4 KiB per chunk).
const CHUNK_PAGES: usize = 1 << CHUNK_BITS;
/// Mask extracting the in-chunk slot from a page number.
const SLOT_MASK: u64 = (CHUNK_PAGES as u64) - 1;

/// Monotonic source of per-instance identifiers, so engine-side translation
/// caches can tell two page tables (or a table and its clone) apart.
static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(1);

/// Trivial multiply-shift hasher for the chunk directory: chunk ids are
/// already well-distributed page-number prefixes, so a full SipHash per
/// translation would be pure overhead.
#[derive(Default)]
pub struct ChunkIdHasher(u64);

impl Hasher for ChunkIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; fold bytes defensively anyway.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E3779B97F4A7C15);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = i.wrapping_mul(0x9E3779B97F4A7C15);
        self.0 ^= self.0 >> 29;
    }
}

type ChunkMap = HashMap<u64, Box<[u8; CHUNK_PAGES]>, BuildHasherDefault<ChunkIdHasher>>;

/// Maps pages to tiers, with a default tier for unmapped pages.
#[derive(Debug)]
pub struct PageTable {
    default_tier: TierId,
    chunks: ChunkMap,
    /// Bytes mapped per tier (page-granular accounting), indexed by tier id.
    footprint: Vec<u64>,
    mapped_pages: usize,
    /// Unique instance id (fresh per construction and per clone).
    table_id: u64,
    /// Bumped on every mutation; see [`translation_key`](Self::translation_key).
    epoch: u64,
}

impl Clone for PageTable {
    fn clone(&self) -> Self {
        PageTable {
            default_tier: self.default_tier,
            chunks: self.chunks.clone(),
            footprint: self.footprint.clone(),
            mapped_pages: self.mapped_pages,
            // A clone can diverge from the original, so it gets its own
            // identity: cached translations for the original must not apply.
            table_id: NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed),
            epoch: 0,
        }
    }
}

impl PageTable {
    /// Create a page table whose unmapped pages belong to `default_tier`
    /// (normally DDR).
    pub fn new(default_tier: TierId) -> Self {
        PageTable {
            default_tier,
            chunks: ChunkMap::default(),
            footprint: Vec::new(),
            mapped_pages: 0,
            table_id: NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed),
            epoch: 0,
        }
    }

    /// The default tier for unmapped pages.
    pub fn default_tier(&self) -> TierId {
        self.default_tier
    }

    /// Identity + mutation counter of this table. A cached translation is
    /// valid exactly as long as this key is unchanged.
    pub fn translation_key(&self) -> (u64, u64) {
        (self.table_id, self.epoch)
    }

    /// Encode a tier into a chunk slot (0 is reserved for "unmapped").
    fn encode(tier: TierId) -> u8 {
        let idx = tier.index();
        assert!(idx < 255, "tier index {idx} exceeds page-index encoding");
        (idx + 1) as u8
    }

    fn footprint_slot(&mut self, tier: TierId) -> &mut u64 {
        let idx = tier.index();
        if idx >= self.footprint.len() {
            self.footprint.resize(idx + 1, 0);
        }
        &mut self.footprint[idx]
    }

    /// Map every page covered by `range` to `tier`.
    pub fn map_range(&mut self, range: AddressRange, tier: TierId) {
        for page in range.pages() {
            self.map_page(page, tier);
        }
    }

    /// Map one page to a tier (re-mapping moves the footprint accounting).
    pub fn map_page(&mut self, page: Page, tier: TierId) {
        self.epoch += 1;
        let chunk = self
            .chunks
            .entry(page.0 >> CHUNK_BITS)
            .or_insert_with(|| Box::new([0u8; CHUNK_PAGES]));
        let slot = &mut chunk[(page.0 & SLOT_MASK) as usize];
        let prev = *slot;
        *slot = Self::encode(tier);
        if prev == 0 {
            // First explicit mapping of this page: it starts counting against
            // its tier's footprint (even when that tier is the default one).
            // Intentional fix over the seed accounting, which also
            // saturating-subtracted a page from the *default* tier here —
            // eroding any explicit default-tier footprint that page never
            // contributed to.
            self.mapped_pages += 1;
            *self.footprint_slot(tier) += PAGE_SIZE;
        } else {
            let prev_tier = TierId(u32::from(prev) - 1);
            if prev_tier != tier {
                *self.footprint_slot(prev_tier) =
                    self.footprint_slot(prev_tier).saturating_sub(PAGE_SIZE);
                *self.footprint_slot(tier) += PAGE_SIZE;
            }
        }
    }

    /// Remove the explicit mapping of every page in `range` (they fall back
    /// to the default tier).
    pub fn unmap_range(&mut self, range: AddressRange) {
        self.epoch += 1;
        for page in range.pages() {
            let Some(chunk) = self.chunks.get_mut(&(page.0 >> CHUNK_BITS)) else {
                continue;
            };
            let slot = &mut chunk[(page.0 & SLOT_MASK) as usize];
            if *slot != 0 {
                let tier = TierId(u32::from(*slot) - 1);
                *slot = 0;
                self.mapped_pages -= 1;
                *self.footprint_slot(tier) = self.footprint_slot(tier).saturating_sub(PAGE_SIZE);
            }
        }
    }

    /// The tier a page currently lives in.
    #[inline]
    pub fn tier_of_page(&self, page: Page) -> TierId {
        match self.chunks.get(&(page.0 >> CHUNK_BITS)) {
            Some(chunk) => {
                let slot = chunk[(page.0 & SLOT_MASK) as usize];
                if slot == 0 {
                    self.default_tier
                } else {
                    TierId(u32::from(slot) - 1)
                }
            }
            None => self.default_tier,
        }
    }

    /// The tier the page containing `addr` lives in.
    #[inline]
    pub fn tier_of(&self, addr: hmsim_common::Address) -> TierId {
        self.tier_of_page(addr.page())
    }

    /// Bytes explicitly mapped to `tier` (page-granular; excludes the default
    /// tier's implicit coverage).
    pub fn mapped_bytes(&self, tier: TierId) -> ByteSize {
        ByteSize::from_bytes(self.footprint.get(tier.index()).copied().unwrap_or(0))
    }

    /// Number of explicitly mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.mapped_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::{Address, ByteSize, PAGE_SIZE};

    #[test]
    fn unmapped_addresses_use_default_tier() {
        let pt = PageTable::new(TierId::DDR);
        assert_eq!(pt.tier_of(Address(0x1234)), TierId::DDR);
        assert_eq!(pt.default_tier(), TierId::DDR);
    }

    #[test]
    fn mapping_a_range_covers_all_its_pages() {
        let mut pt = PageTable::new(TierId::DDR);
        let range = AddressRange::new(Address(PAGE_SIZE / 2), ByteSize::from_bytes(PAGE_SIZE * 2));
        pt.map_range(range, TierId::MCDRAM);
        assert_eq!(pt.tier_of(Address(PAGE_SIZE / 2)), TierId::MCDRAM);
        assert_eq!(pt.tier_of(Address(PAGE_SIZE + 5)), TierId::MCDRAM);
        assert_eq!(pt.tier_of(Address(PAGE_SIZE * 2 + 1)), TierId::MCDRAM);
        assert_eq!(pt.tier_of(Address(PAGE_SIZE * 4)), TierId::DDR);
    }

    #[test]
    fn footprint_accounting_tracks_mapping_and_unmapping() {
        let mut pt = PageTable::new(TierId::DDR);
        let range = AddressRange::new(Address(0), ByteSize::from_bytes(PAGE_SIZE * 3));
        pt.map_range(range, TierId::MCDRAM);
        assert_eq!(
            pt.mapped_bytes(TierId::MCDRAM),
            ByteSize::from_bytes(PAGE_SIZE * 3)
        );
        pt.unmap_range(AddressRange::new(
            Address(0),
            ByteSize::from_bytes(PAGE_SIZE),
        ));
        assert_eq!(
            pt.mapped_bytes(TierId::MCDRAM),
            ByteSize::from_bytes(PAGE_SIZE * 2)
        );
        assert_eq!(pt.mapped_pages(), 2);
    }

    #[test]
    fn remapping_moves_footprint_between_tiers() {
        let mut pt = PageTable::new(TierId::DDR);
        pt.map_page(Page(7), TierId::DDR);
        pt.map_page(Page(7), TierId::MCDRAM);
        assert_eq!(pt.mapped_bytes(TierId::MCDRAM).bytes(), PAGE_SIZE);
        assert_eq!(pt.mapped_bytes(TierId::DDR).bytes(), 0);
        // Re-mapping to the same tier is a no-op for accounting.
        pt.map_page(Page(7), TierId::MCDRAM);
        assert_eq!(pt.mapped_bytes(TierId::MCDRAM).bytes(), PAGE_SIZE);
    }

    #[test]
    fn pages_straddling_chunk_boundaries_translate_correctly() {
        let mut pt = PageTable::new(TierId::DDR);
        // Map a range crossing the 4096-page chunk boundary.
        let boundary_page = CHUNK_PAGES as u64;
        pt.map_page(Page(boundary_page - 1), TierId::MCDRAM);
        pt.map_page(Page(boundary_page), TierId(2));
        assert_eq!(pt.tier_of_page(Page(boundary_page - 1)), TierId::MCDRAM);
        assert_eq!(pt.tier_of_page(Page(boundary_page)), TierId(2));
        assert_eq!(pt.tier_of_page(Page(boundary_page + 1)), TierId::DDR);
        assert_eq!(pt.mapped_pages(), 2);
    }

    #[test]
    fn translation_key_changes_on_mutation_and_differs_per_clone() {
        let mut pt = PageTable::new(TierId::DDR);
        let k0 = pt.translation_key();
        pt.map_page(Page(1), TierId::MCDRAM);
        let k1 = pt.translation_key();
        assert_ne!(k0, k1);

        let clone = pt.clone();
        assert_ne!(clone.translation_key().0, pt.translation_key().0);
        // Clone still answers identically.
        assert_eq!(clone.tier_of_page(Page(1)), TierId::MCDRAM);
        assert_eq!(clone.mapped_pages(), 1);
        assert_eq!(clone.mapped_bytes(TierId::MCDRAM).bytes(), PAGE_SIZE);
    }

    #[test]
    fn unmap_of_untouched_chunks_is_a_noop() {
        let mut pt = PageTable::new(TierId::DDR);
        pt.unmap_range(AddressRange::new(Address(0), ByteSize::from_mib(64)));
        assert_eq!(pt.mapped_pages(), 0);
        assert_eq!(pt.mapped_bytes(TierId::DDR).bytes(), 0);
    }
}
