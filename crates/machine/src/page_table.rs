//! Page-granularity mapping of the simulated address space to memory tiers.
//!
//! The framework's whole purpose is to decide which pages live in which tier;
//! this structure records that decision and answers "where does this address
//! live" for both engines. `hmem_advisor` packs objects into tiers at page
//! granularity (paper §III step 3), so pages are also our unit here.

use hmsim_common::{AddressRange, ByteSize, Page, TierId};
use std::collections::HashMap;

/// Maps pages to tiers, with a default tier for unmapped pages.
#[derive(Clone, Debug)]
pub struct PageTable {
    default_tier: TierId,
    pages: HashMap<Page, TierId>,
    /// Bytes mapped per tier (page-granular accounting), indexed by tier id.
    footprint: HashMap<TierId, u64>,
}

impl PageTable {
    /// Create a page table whose unmapped pages belong to `default_tier`
    /// (normally DDR).
    pub fn new(default_tier: TierId) -> Self {
        PageTable {
            default_tier,
            pages: HashMap::new(),
            footprint: HashMap::new(),
        }
    }

    /// The default tier for unmapped pages.
    pub fn default_tier(&self) -> TierId {
        self.default_tier
    }

    /// Map every page covered by `range` to `tier`.
    pub fn map_range(&mut self, range: AddressRange, tier: TierId) {
        for page in range.pages() {
            self.map_page(page, tier);
        }
    }

    /// Map one page to a tier (re-mapping moves the footprint accounting).
    pub fn map_page(&mut self, page: Page, tier: TierId) {
        let prev = self.pages.insert(page, tier);
        let prev_tier = prev.unwrap_or(self.default_tier);
        if prev_tier != tier {
            *self.footprint.entry(prev_tier).or_insert(0) = self
                .footprint
                .get(&prev_tier)
                .copied()
                .unwrap_or(0)
                .saturating_sub(hmsim_common::PAGE_SIZE);
            *self.footprint.entry(tier).or_insert(0) += hmsim_common::PAGE_SIZE;
        } else if prev.is_none() {
            *self.footprint.entry(tier).or_insert(0) += hmsim_common::PAGE_SIZE;
        }
    }

    /// Remove the explicit mapping of every page in `range` (they fall back
    /// to the default tier).
    pub fn unmap_range(&mut self, range: AddressRange) {
        for page in range.pages() {
            if let Some(tier) = self.pages.remove(&page) {
                *self.footprint.entry(tier).or_insert(0) = self
                    .footprint
                    .get(&tier)
                    .copied()
                    .unwrap_or(0)
                    .saturating_sub(hmsim_common::PAGE_SIZE);
            }
        }
    }

    /// The tier a page currently lives in.
    pub fn tier_of_page(&self, page: Page) -> TierId {
        self.pages.get(&page).copied().unwrap_or(self.default_tier)
    }

    /// The tier the page containing `addr` lives in.
    pub fn tier_of(&self, addr: hmsim_common::Address) -> TierId {
        self.tier_of_page(addr.page())
    }

    /// Bytes explicitly mapped to `tier` (page-granular; excludes the default
    /// tier's implicit coverage).
    pub fn mapped_bytes(&self, tier: TierId) -> ByteSize {
        ByteSize::from_bytes(self.footprint.get(&tier).copied().unwrap_or(0))
    }

    /// Number of explicitly mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::{Address, ByteSize, PAGE_SIZE};

    #[test]
    fn unmapped_addresses_use_default_tier() {
        let pt = PageTable::new(TierId::DDR);
        assert_eq!(pt.tier_of(Address(0x1234)), TierId::DDR);
        assert_eq!(pt.default_tier(), TierId::DDR);
    }

    #[test]
    fn mapping_a_range_covers_all_its_pages() {
        let mut pt = PageTable::new(TierId::DDR);
        let range = AddressRange::new(Address(PAGE_SIZE / 2), ByteSize::from_bytes(PAGE_SIZE * 2));
        pt.map_range(range, TierId::MCDRAM);
        assert_eq!(pt.tier_of(Address(PAGE_SIZE / 2)), TierId::MCDRAM);
        assert_eq!(pt.tier_of(Address(PAGE_SIZE + 5)), TierId::MCDRAM);
        assert_eq!(pt.tier_of(Address(PAGE_SIZE * 2 + 1)), TierId::MCDRAM);
        assert_eq!(pt.tier_of(Address(PAGE_SIZE * 4)), TierId::DDR);
    }

    #[test]
    fn footprint_accounting_tracks_mapping_and_unmapping() {
        let mut pt = PageTable::new(TierId::DDR);
        let range = AddressRange::new(Address(0), ByteSize::from_bytes(PAGE_SIZE * 3));
        pt.map_range(range, TierId::MCDRAM);
        assert_eq!(pt.mapped_bytes(TierId::MCDRAM), ByteSize::from_bytes(PAGE_SIZE * 3));
        pt.unmap_range(AddressRange::new(Address(0), ByteSize::from_bytes(PAGE_SIZE)));
        assert_eq!(pt.mapped_bytes(TierId::MCDRAM), ByteSize::from_bytes(PAGE_SIZE * 2));
        assert_eq!(pt.mapped_pages(), 2);
    }

    #[test]
    fn remapping_moves_footprint_between_tiers() {
        let mut pt = PageTable::new(TierId::DDR);
        pt.map_page(Page(7), TierId::DDR);
        pt.map_page(Page(7), TierId::MCDRAM);
        assert_eq!(pt.mapped_bytes(TierId::MCDRAM).bytes(), PAGE_SIZE);
        assert_eq!(pt.mapped_bytes(TierId::DDR).bytes(), 0);
        // Re-mapping to the same tier is a no-op for accounting.
        pt.map_page(Page(7), TierId::MCDRAM);
        assert_eq!(pt.mapped_bytes(TierId::MCDRAM).bytes(), PAGE_SIZE);
    }
}
