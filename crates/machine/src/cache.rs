//! Set-associative cache simulator with LRU replacement.
//!
//! Used for the L1 and L2 (LLC) levels of the trace-driven engine and, with
//! one way per set, as the direct-mapped model behind MCDRAM cache mode.

use hmsim_common::{Address, ByteSize};

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Line size in bytes (power of two).
    pub line_size: u64,
    /// Associativity (ways per set); 1 = direct mapped.
    pub ways: u32,
}

impl CacheConfig {
    /// Build a configuration; panics on degenerate geometry. The number of
    /// sets must come out a power of two so set selection can be a shift and
    /// a mask instead of a division and a modulo on the access hot path.
    pub fn new(size: ByteSize, line_size: u64, ways: u32) -> Self {
        assert!(
            line_size.is_power_of_two() && line_size > 0,
            "line size must be a power of two"
        );
        assert!(ways > 0, "cache needs at least one way");
        assert!(
            size.bytes().is_multiple_of(line_size * u64::from(ways)),
            "cache size must be a multiple of line_size * ways"
        );
        let sets = size.bytes() / (line_size * u64::from(ways));
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two (got {sets})"
        );
        CacheConfig {
            size: size.bytes(),
            line_size,
            ways,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size / (self.line_size * u64::from(self.ways))
    }
}

/// Hit/miss counters of one cache level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
    /// Number of dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; 0 if no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// Line-state encoding: `meta` holds `tag << 2 | dirty << 1 | valid`, so the
/// hit check collapses to a single masked compare, and a whole 8-way set's
/// metadata spans one host cache line. The LRU ages live in a parallel array
/// (structure-of-arrays) so the victim scan reads one contiguous line too.
const LINE_VALID: u64 = 1;
const LINE_DIRTY: u64 = 2;

/// A set-associative, write-back, write-allocate cache with LRU replacement.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// Per-line `tag << 2 | dirty << 1 | valid`, sets stored contiguously.
    meta: Vec<u64>,
    /// Per-line logical timestamp of the last touch, for LRU.
    age: Vec<u64>,
    clock: u64,
    stats: CacheStats,
    /// log2(line_size), precomputed for the hot path.
    line_shift: u32,
    /// log2(sets), precomputed for the hot path.
    set_shift: u32,
    /// sets - 1, precomputed for the hot path.
    set_mask: u64,
    /// Line address of the most recently touched (resident) line — a
    /// line-buffer fast path: consecutive accesses to one line skip the set
    /// scan. `u64::MAX` = invalid.
    last_line: u64,
    /// Index of that line in `meta`/`age`.
    last_idx: u32,
}

impl SetAssocCache {
    /// Create an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let total_lines = (config.sets() * u64::from(config.ways)) as usize;
        SetAssocCache {
            config,
            meta: vec![0; total_lines],
            age: vec![0; total_lines],
            clock: 0,
            stats: CacheStats::default(),
            line_shift: config.line_size.trailing_zeros(),
            set_shift: config.sets().trailing_zeros(),
            set_mask: config.sets() - 1,
            last_line: u64::MAX,
            last_idx: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics but keep cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Drop all contents and statistics.
    pub fn flush(&mut self) {
        self.meta.fill(0);
        self.age.fill(0);
        self.stats = CacheStats::default();
        self.clock = 0;
        self.last_line = u64::MAX;
        self.last_idx = 0;
    }

    #[inline]
    fn set_range(&self, addr: Address) -> (usize, u64) {
        let line_addr = addr.value() >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_shift;
        (set, tag)
    }

    /// Access the cache at `addr`. Returns `true` on hit. On a miss the line
    /// is installed (write-allocate), possibly evicting the LRU way.
    ///
    /// Consecutive accesses to one line (the dominant pattern of a sequential
    /// sweep: 8 element touches per 64 B line) short-circuit through the line
    /// buffer. Collapsing consecutive touches of a line leaves the relative
    /// LRU order of every set unchanged, so hit/miss/writeback behaviour is
    /// identical to the fully scanned simulation.
    #[inline(always)]
    pub fn access(&mut self, addr: Address, is_store: bool) -> bool {
        let line_addr = addr.value() >> self.line_shift;
        if line_addr == self.last_line {
            self.stats.hits += 1;
            // Branchless dirty update: an unconditional RMW on a cached
            // line beats a 30%-taken branch.
            self.meta[self.last_idx as usize] |= u64::from(is_store) << 1;
            return true;
        }
        self.access_uncached(line_addr, is_store)
    }

    /// Line-buffer-only probe: returns `true` (and accounts the hit) iff the
    /// access falls on the most recently touched line. This is exactly the
    /// fast path of [`access`](Self::access), exposed so batch drivers can
    /// take it without paying the full dispatch.
    #[inline(always)]
    pub fn buffered_hit(&mut self, addr: Address, is_store: bool) -> bool {
        let line_addr = addr.value() >> self.line_shift;
        if line_addr == self.last_line {
            self.stats.hits += 1;
            self.meta[self.last_idx as usize] |= u64::from(is_store) << 1;
            true
        } else {
            false
        }
    }

    #[inline]
    fn access_uncached(&mut self, line_addr: u64, is_store: bool) -> bool {
        // Monomorphize the set scan over the common associativities so the
        // fused hit/victim loop fully unrolls with a known trip count.
        match self.config.ways {
            1 => self.scan_set::<1>(line_addr, is_store),
            2 => self.scan_set::<2>(line_addr, is_store),
            4 => self.scan_set::<4>(line_addr, is_store),
            8 => self.scan_set::<8>(line_addr, is_store),
            16 => self.scan_set::<16>(line_addr, is_store),
            _ => self.scan_set_dyn(line_addr, is_store),
        }
    }

    #[inline]
    fn scan_set<const W: usize>(&mut self, line_addr: u64, is_store: bool) -> bool {
        self.clock += 1;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_shift;
        let base = set * W;
        let metas: &mut [u64; W] = (&mut self.meta[base..base + W]).try_into().unwrap();
        let ages: &mut [u64; W] = (&mut self.age[base..base + W]).try_into().unwrap();
        // Valid line with this tag, dirty bit don't-care: one compare per way.
        let want = tag << 2 | LINE_DIRTY | LINE_VALID;

        // One fused pass: find the hit, tracking the LRU victim (first
        // minimal, invalid ways counting as age 0) on the way.
        let mut victim = 0usize;
        let mut victim_key = u64::MAX;
        for way in 0..W {
            let m = metas[way];
            if (m | LINE_DIRTY) == want {
                metas[way] = m | u64::from(is_store) << 1;
                ages[way] = self.clock;
                self.stats.hits += 1;
                self.last_line = line_addr;
                self.last_idx = (base + way) as u32;
                return true;
            }
            // Branchless LRU tracking: the comparison outcome is
            // data-dependent and would mispredict, so compile it to selects.
            let key = if m & LINE_VALID != 0 {
                ages[way] + 1
            } else {
                0
            };
            let better = key < victim_key;
            victim = if better { way } else { victim };
            victim_key = if better { key } else { victim_key };
        }

        self.stats.misses += 1;
        if metas[victim] & (LINE_VALID | LINE_DIRTY) == (LINE_VALID | LINE_DIRTY) {
            self.stats.writebacks += 1;
        }
        metas[victim] = tag << 2 | u64::from(is_store) << 1 | LINE_VALID;
        ages[victim] = self.clock;
        self.last_line = line_addr;
        self.last_idx = (base + victim) as u32;
        false
    }

    /// Fallback for unusual associativities; same algorithm over slices.
    fn scan_set_dyn(&mut self, line_addr: u64, is_store: bool) -> bool {
        self.clock += 1;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_shift;
        let ways = self.config.ways as usize;
        let base = set * ways;
        let metas = &mut self.meta[base..base + ways];
        let ages = &mut self.age[base..base + ways];
        let want = tag << 2 | LINE_DIRTY | LINE_VALID;

        let mut victim = 0usize;
        let mut victim_key = u64::MAX;
        for way in 0..ways {
            let m = metas[way];
            if (m | LINE_DIRTY) == want {
                metas[way] = m | u64::from(is_store) << 1;
                ages[way] = self.clock;
                self.stats.hits += 1;
                self.last_line = line_addr;
                self.last_idx = (base + way) as u32;
                return true;
            }
            let key = if m & LINE_VALID != 0 {
                ages[way] + 1
            } else {
                0
            };
            let better = key < victim_key;
            victim = if better { way } else { victim };
            victim_key = if better { key } else { victim_key };
        }

        self.stats.misses += 1;
        if metas[victim] & (LINE_VALID | LINE_DIRTY) == (LINE_VALID | LINE_DIRTY) {
            self.stats.writebacks += 1;
        }
        metas[victim] = tag << 2 | u64::from(is_store) << 1 | LINE_VALID;
        ages[victim] = self.clock;
        self.last_line = line_addr;
        self.last_idx = (base + victim) as u32;
        false
    }

    /// Whether the line containing `addr` is currently resident (does not
    /// update statistics or LRU state).
    pub fn probe(&self, addr: Address) -> bool {
        let (set, tag) = self.set_range(addr);
        let ways = self.config.ways as usize;
        let base = set * ways;
        let want = tag << 2 | LINE_DIRTY | LINE_VALID;
        self.meta[base..base + ways]
            .iter()
            .any(|m| (m | LINE_DIRTY) == want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::ByteSize;

    fn small_cache(ways: u32) -> SetAssocCache {
        // 4 KiB, 64 B lines => 64 lines total.
        SetAssocCache::new(CacheConfig::new(ByteSize::from_kib(4), 64, ways))
    }

    #[test]
    fn geometry_is_computed_correctly() {
        let c = CacheConfig::new(ByteSize::from_kib(32), 64, 8);
        assert_eq!(c.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheConfig::new(ByteSize::from_kib(4), 48, 4);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache(4);
        assert!(!c.access(Address(0x1000), false));
        assert!(c.access(Address(0x1000), false));
        assert!(c.access(Address(0x1008), false), "same line must hit");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = small_cache(4);
        // 4 KiB cache, touch 2 KiB repeatedly.
        for pass in 0..3 {
            for i in 0..32u64 {
                let hit = c.access(Address(i * 64), false);
                if pass > 0 {
                    assert!(hit, "pass {pass} line {i} should hit");
                }
            }
        }
        assert_eq!(c.stats().misses, 32);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = small_cache(4);
        // Touch 16 KiB (4x capacity) with LRU + sequential = always miss
        // after the first pass too.
        for _ in 0..3 {
            for i in 0..256u64 {
                c.access(Address(i * 64), false);
            }
        }
        assert!(c.stats().miss_ratio() > 0.95);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Direct conflict scenario in a 2-way cache: three lines mapping to
        // the same set.
        let mut c = small_cache(2);
        let sets = c.config().sets();
        let stride = sets * 64; // same set, different tag
        let a = Address(0);
        let b = Address(stride);
        let d = Address(stride * 2);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now MRU
        c.access(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn writebacks_counted_for_dirty_evictions() {
        let mut c = small_cache(1); // direct-mapped
        let sets = c.config().sets();
        let stride = sets * 64;
        c.access(Address(0), true); // dirty
        c.access(Address(stride), false); // evicts dirty line
        assert_eq!(c.stats().writebacks, 1);
        c.access(Address(0), false); // clean
        c.access(Address(stride), false); // evicts clean line
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = small_cache(4);
        c.access(Address(0x40), false);
        assert!(c.probe(Address(0x40)));
        c.flush();
        assert!(!c.probe(Address(0x40)));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn direct_mapped_conflict_misses() {
        // Two addresses mapping to the same set of a direct-mapped cache
        // alternate: every access misses. With 2 ways they all hit.
        let mut dm = small_cache(1);
        let sets = dm.config().sets();
        let stride = sets * 64;
        for _ in 0..10 {
            dm.access(Address(0), false);
            dm.access(Address(stride), false);
        }
        assert_eq!(dm.stats().hits, 0);

        let mut two_way = small_cache(2);
        for _ in 0..10 {
            two_way.access(Address(0), false);
            two_way.access(Address(stride), false);
        }
        assert_eq!(two_way.stats().misses, 2);
        assert_eq!(two_way.stats().hits, 18);
    }
}
