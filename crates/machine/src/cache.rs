//! Set-associative cache simulator with LRU replacement.
//!
//! Used for the L1 and L2 (LLC) levels of the trace-driven engine and, with
//! one way per set, as the direct-mapped model behind MCDRAM cache mode.

use hmsim_common::{Address, ByteSize};

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Line size in bytes (power of two).
    pub line_size: u64,
    /// Associativity (ways per set); 1 = direct mapped.
    pub ways: u32,
}

impl CacheConfig {
    /// Build a configuration; panics on degenerate geometry.
    pub fn new(size: ByteSize, line_size: u64, ways: u32) -> Self {
        assert!(line_size.is_power_of_two() && line_size > 0, "line size must be a power of two");
        assert!(ways > 0, "cache needs at least one way");
        assert!(
            size.bytes() % (line_size * u64::from(ways)) == 0,
            "cache size must be a multiple of line_size * ways"
        );
        CacheConfig {
            size: size.bytes(),
            line_size,
            ways,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size / (self.line_size * u64::from(self.ways))
    }
}

/// Hit/miss counters of one cache level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
    /// Number of dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; 0 if no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Logical timestamp of the last touch, for LRU.
    last_use: u64,
}

impl Line {
    const EMPTY: Line = Line {
        tag: 0,
        valid: false,
        dirty: false,
        last_use: 0,
    };
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Create an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let total_lines = (config.sets() * u64::from(config.ways)) as usize;
        SetAssocCache {
            config,
            lines: vec![Line::EMPTY; total_lines],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics but keep cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Drop all contents and statistics.
    pub fn flush(&mut self) {
        self.lines.fill(Line::EMPTY);
        self.stats = CacheStats::default();
        self.clock = 0;
    }

    fn set_range(&self, addr: Address) -> (usize, u64) {
        let line_addr = addr.value() / self.config.line_size;
        let set = (line_addr % self.config.sets()) as usize;
        let tag = line_addr / self.config.sets();
        (set, tag)
    }

    /// Access the cache at `addr`. Returns `true` on hit. On a miss the line
    /// is installed (write-allocate), possibly evicting the LRU way.
    pub fn access(&mut self, addr: Address, is_store: bool) -> bool {
        self.clock += 1;
        let (set, tag) = self.set_range(addr);
        let ways = self.config.ways as usize;
        let base = set * ways;
        let slots = &mut self.lines[base..base + ways];

        if let Some(line) = slots.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.clock;
            line.dirty |= is_store;
            self.stats.hits += 1;
            return true;
        }

        self.stats.misses += 1;
        // Choose a victim: an invalid way if any, otherwise the LRU way.
        let victim = slots
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.last_use + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("cache set has at least one way");
        let line = &mut slots[victim];
        if line.valid && line.dirty {
            self.stats.writebacks += 1;
        }
        *line = Line {
            tag,
            valid: true,
            dirty: is_store,
            last_use: self.clock,
        };
        false
    }

    /// Whether the line containing `addr` is currently resident (does not
    /// update statistics or LRU state).
    pub fn probe(&self, addr: Address) -> bool {
        let (set, tag) = self.set_range(addr);
        let ways = self.config.ways as usize;
        let base = set * ways;
        self.lines[base..base + ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::ByteSize;

    fn small_cache(ways: u32) -> SetAssocCache {
        // 4 KiB, 64 B lines => 64 lines total.
        SetAssocCache::new(CacheConfig::new(ByteSize::from_kib(4), 64, ways))
    }

    #[test]
    fn geometry_is_computed_correctly() {
        let c = CacheConfig::new(ByteSize::from_kib(32), 64, 8);
        assert_eq!(c.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheConfig::new(ByteSize::from_kib(4), 48, 4);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache(4);
        assert!(!c.access(Address(0x1000), false));
        assert!(c.access(Address(0x1000), false));
        assert!(c.access(Address(0x1008), false), "same line must hit");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = small_cache(4);
        // 4 KiB cache, touch 2 KiB repeatedly.
        for pass in 0..3 {
            for i in 0..32u64 {
                let hit = c.access(Address(i * 64), false);
                if pass > 0 {
                    assert!(hit, "pass {pass} line {i} should hit");
                }
            }
        }
        assert_eq!(c.stats().misses, 32);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = small_cache(4);
        // Touch 16 KiB (4x capacity) with LRU + sequential = always miss
        // after the first pass too.
        for _ in 0..3 {
            for i in 0..256u64 {
                c.access(Address(i * 64), false);
            }
        }
        assert!(c.stats().miss_ratio() > 0.95);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Direct conflict scenario in a 2-way cache: three lines mapping to
        // the same set.
        let mut c = small_cache(2);
        let sets = c.config().sets();
        let stride = sets * 64; // same set, different tag
        let a = Address(0);
        let b = Address(stride);
        let d = Address(stride * 2);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now MRU
        c.access(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn writebacks_counted_for_dirty_evictions() {
        let mut c = small_cache(1); // direct-mapped
        let sets = c.config().sets();
        let stride = sets * 64;
        c.access(Address(0), true); // dirty
        c.access(Address(stride), false); // evicts dirty line
        assert_eq!(c.stats().writebacks, 1);
        c.access(Address(0), false); // clean
        c.access(Address(stride), false); // evicts clean line
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = small_cache(4);
        c.access(Address(0x40), false);
        assert!(c.probe(Address(0x40)));
        c.flush();
        assert!(!c.probe(Address(0x40)));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn direct_mapped_conflict_misses() {
        // Two addresses mapping to the same set of a direct-mapped cache
        // alternate: every access misses. With 2 ways they all hit.
        let mut dm = small_cache(1);
        let sets = dm.config().sets();
        let stride = sets * 64;
        for _ in 0..10 {
            dm.access(Address(0), false);
            dm.access(Address(stride), false);
        }
        assert_eq!(dm.stats().hits, 0);

        let mut two_way = small_cache(2);
        for _ in 0..10 {
            two_way.access(Address(0), false);
            two_way.access(Address(stride), false);
        }
        assert_eq!(two_way.stats().misses, 2);
        assert_eq!(two_way.stats().hits, 18);
    }
}
