//! The trace-driven online placement runtime.
//!
//! Each epoch the runtime (1) drives the [`TraceEngine`] over the next
//! window of accesses while a [`PebsSampler`] observes the LLC-miss stream,
//! (2) aggregates the samples into per-object heat through the heap's
//! live-object registry, (3) re-runs the advisor's selection against the
//! fast-tier budget, and (4) executes the migration delta through
//! [`ProcessHeap::migrate_object`], charging every move through the
//! [`MigrationCostModel`] and adding it to the run's latency.

use crate::controller::{EpochPlan, ObjectPlacement, PlacementController};
use crate::cost::MigrationCostModel;
use crate::OnlineConfig;
use hmsim_common::{ByteSize, Nanos, TierId};
use hmsim_heap::ProcessHeap;
use hmsim_machine::{EngineStats, MachineConfig, MemoryAccess, TraceEngine};
use hmsim_pebs::{PebsEvent, PebsSampler, ProcessorFamily, RawSample};

/// What one epoch did.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochRecord {
    /// Accesses simulated this epoch.
    pub accesses: u64,
    /// PEBS samples captured this epoch.
    pub samples: u64,
    /// Objects promoted to the fast tier.
    pub promotions: u32,
    /// Objects demoted out of the fast tier.
    pub demotions: u32,
    /// Bytes moved by this epoch's migrations.
    pub bytes_moved: u64,
    /// Latency charged for this epoch's migrations.
    pub migration_time: Nanos,
}

/// Aggregate statistics of one online run.
#[derive(Clone, Debug, Default)]
pub struct RuntimeStats {
    /// Epochs executed (including the final partial one).
    pub epochs: u64,
    /// Total accesses simulated.
    pub accesses: u64,
    /// Total PEBS samples observed.
    pub samples: u64,
    /// Migrations executed (promotions + demotions).
    pub migrations: u64,
    /// Total bytes moved between tiers.
    pub bytes_migrated: ByteSize,
    /// Total latency charged for migrations.
    pub migration_time: Nanos,
    /// Planned moves that the heap rejected (capacity races); the plan is
    /// conservative, so this should stay at zero.
    pub rejected_moves: u64,
    /// Moves executed *after* this runtime's stream drained (a node-level
    /// planner demoting a finished rank's residency to make room for active
    /// ranks). Counted separately because they are housekeeping off this
    /// rank's critical path: their latency accrues to
    /// [`background_migration_time`](Self::background_migration_time), not
    /// to the run's [`total_time`](super::OnlineRuntime::total_time).
    pub background_migrations: u64,
    /// Latency of the background moves (not part of the rank's time).
    pub background_migration_time: Nanos,
    /// Peak fast-tier residency observed at commit boundaries (migrations
    /// only happen there, so this is the exact high-water mark of a
    /// trace-driven run whose heap sees no allocations mid-epoch).
    pub fast_residency_peak: ByteSize,
    /// Per-epoch log (one entry per epoch; epochs are coarse, so this stays
    /// small even for paper-scale runs).
    pub epoch_log: Vec<EpochRecord>,
}

/// The epoch-driven online placement engine.
pub struct OnlineRuntime {
    engine: TraceEngine,
    sampler: PebsSampler,
    controller: PlacementController,
    cost: MigrationCostModel,
    fast_tier: TierId,
    fast_budget: ByteSize,
    stats: RuntimeStats,
}

impl OnlineRuntime {
    /// Build a runtime for `machine` with `fast_budget` bytes of fast-tier
    /// capacity at its disposal. The fast tier is the machine's
    /// highest-performance tier (MCDRAM on KNL).
    pub fn new(machine: &MachineConfig, fast_budget: ByteSize, cfg: OnlineConfig) -> Self {
        let fast_tier = machine
            .tiers
            .fastest()
            .map(|t| t.id)
            .unwrap_or(TierId::MCDRAM);
        let sampler = PebsSampler::new(
            ProcessorFamily::KnightsLanding,
            PebsEvent::LlcLoadMiss,
            cfg.pebs_period,
            hmsim_common::DetRng::new(cfg.seed),
        );
        OnlineRuntime {
            engine: TraceEngine::new(machine),
            sampler,
            cost: MigrationCostModel::with_streams(machine, cfg.migration_streams),
            controller: PlacementController::new(cfg),
            fast_tier,
            fast_budget,
            stats: RuntimeStats::default(),
        }
    }

    /// The fast tier this runtime promotes into.
    pub fn fast_tier(&self) -> TierId {
        self.fast_tier
    }

    /// The fast-tier budget the next epoch's selection packs against.
    pub fn fast_budget(&self) -> ByteSize {
        self.fast_budget
    }

    /// Re-arm the fast-tier budget. The multi-rank shard runner calls this
    /// every epoch with whatever the node arbiter granted this rank.
    pub fn set_fast_budget(&mut self, budget: ByteSize) {
        self.fast_budget = budget;
    }

    /// The configuration driving the epoch loop.
    pub fn config(&self) -> &OnlineConfig {
        self.controller.config()
    }

    /// The engine's accumulated simulation statistics.
    pub fn engine_stats(&self) -> &EngineStats {
        self.engine.stats()
    }

    /// The runtime's own statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Total simulated latency: the engine's execution-time estimate plus
    /// every migration charge incurred while the stream was running
    /// (background housekeeping moves are excluded — see
    /// [`RuntimeStats::background_migration_time`]).
    pub fn total_time(&self) -> Nanos {
        self.engine.stats().time + self.stats.migration_time
    }

    /// Drive the whole access stream through the epoch loop, mutating the
    /// heap's placement as the controller decides. Returns the total number
    /// of LLC misses, mirroring [`TraceEngine::run_stream`].
    pub fn run<I>(&mut self, accesses: I, heap: &mut ProcessHeap) -> u64
    where
        I: IntoIterator<Item = MemoryAccess>,
    {
        let mut it = accesses.into_iter();
        let misses_before = self.engine.stats().counters.llc_misses;
        let epoch_len = self.controller.config().epoch_accesses;
        // Scratch buffer for the epoch's samples, reused across epochs.
        let mut sampled: Vec<RawSample> = Vec::new();

        loop {
            let consumed = self.observe_epoch(&mut it, heap, &mut sampled);
            if consumed == 0 {
                break;
            }
            self.commit_epoch(heap, consumed, &sampled);
            if consumed < epoch_len {
                break;
            }
        }
        self.engine.stats().counters.llc_misses - misses_before
    }

    /// Drive up to one epoch's worth of accesses from `it` through the
    /// engine, with the PEBS sampler observing the LLC-miss stream into
    /// `sampled` (cleared first, so callers can reuse one buffer across
    /// epochs). Returns how many accesses were consumed. Pure observation:
    /// placement is untouched, so the multi-rank runner can fan this out
    /// over shards before arbitrating serially.
    pub fn observe_epoch<I>(
        &mut self,
        it: &mut I,
        heap: &ProcessHeap,
        sampled: &mut Vec<RawSample>,
    ) -> u64
    where
        I: Iterator<Item = MemoryAccess> + ?Sized,
    {
        let epoch_len = self.controller.config().epoch_accesses;
        sampled.clear();
        let epoch_start = self.engine.stats().time;
        let mut consumed = 0u64;
        let engine = &mut self.engine;
        let sampler = &mut self.sampler;
        let page_table = heap.page_table();
        while consumed < epoch_len {
            let Some(acc) = it.next() else { break };
            consumed += 1;
            engine.access_with(&acc, page_table, |addr| {
                if let Some(s) = sampler.observe(epoch_start, addr) {
                    sampled.push(s);
                }
            });
        }
        consumed
    }

    /// Close one observed epoch: aggregate the samples into heat, re-run the
    /// controller's selection against [`fast_budget`](Self::fast_budget) and
    /// execute the migration delta.
    pub fn commit_epoch(&mut self, heap: &mut ProcessHeap, consumed: u64, sampled: &[RawSample]) {
        for s in sampled {
            if let Some(obj) = heap.registry().find_containing(s.address) {
                self.controller.record(obj.id, s.weight as f64);
            }
        }
        let live = ObjectPlacement::snapshot_live(heap);
        let plan = self
            .controller
            .end_epoch(&live, self.fast_tier, self.fast_budget);
        self.finish_epoch(heap, consumed, sampled.len() as u64, &plan);
    }

    /// Close one observed epoch whose migration plan was produced by an
    /// external (node-global) planner instead of this runtime's own
    /// controller. Executes the plan with the exact accounting
    /// [`commit_epoch`](Self::commit_epoch) uses.
    pub fn commit_epoch_with_plan(
        &mut self,
        heap: &mut ProcessHeap,
        consumed: u64,
        samples: u64,
        plan: &EpochPlan,
    ) {
        self.finish_epoch(heap, consumed, samples, plan);
    }

    /// Execute a node-planner slice on a runtime whose stream has already
    /// drained. The moves happen (and are counted as background moves), but
    /// no epoch is booked and the latency does not extend
    /// [`total_time`](Self::total_time): demoting a finished rank's
    /// residency is housekeeping off that rank's critical path.
    pub fn commit_background_plan(&mut self, heap: &mut ProcessHeap, plan: &EpochPlan) {
        let slow_tier = heap.page_table().default_tier();
        for (ids, to, from) in [
            (&plan.demotions, slow_tier, self.fast_tier),
            (&plan.promotions, self.fast_tier, slow_tier),
        ] {
            for id in ids {
                match heap.migrate_object(*id, to) {
                    Ok(bytes) => {
                        self.stats.background_migrations += 1;
                        self.stats.background_migration_time += self.cost.charge(bytes, from, to);
                    }
                    Err(_) => self.stats.rejected_moves += 1,
                }
            }
        }
        self.stats.fast_residency_peak = self
            .stats
            .fast_residency_peak
            .max(heap.tier_occupancy(self.fast_tier));
    }

    /// Execute a migration plan and book the epoch into the statistics.
    fn finish_epoch(
        &mut self,
        heap: &mut ProcessHeap,
        accesses: u64,
        samples: u64,
        plan: &EpochPlan,
    ) {
        self.stats.accesses += accesses;
        self.stats.epochs += 1;
        let mut record = EpochRecord {
            accesses,
            samples,
            ..EpochRecord::default()
        };
        self.stats.samples += samples;

        let slow_tier = heap.page_table().default_tier();
        for id in &plan.demotions {
            match heap.migrate_object(*id, slow_tier) {
                Ok(bytes) => {
                    record.demotions += 1;
                    record.bytes_moved += bytes.bytes();
                    record.migration_time += self.cost.charge(bytes, self.fast_tier, slow_tier);
                }
                Err(_) => self.stats.rejected_moves += 1,
            }
        }
        for id in &plan.promotions {
            match heap.migrate_object(*id, self.fast_tier) {
                Ok(bytes) => {
                    record.promotions += 1;
                    record.bytes_moved += bytes.bytes();
                    record.migration_time += self.cost.charge(bytes, slow_tier, self.fast_tier);
                }
                Err(_) => self.stats.rejected_moves += 1,
            }
        }
        self.stats.migrations += u64::from(record.promotions) + u64::from(record.demotions);
        self.stats.bytes_migrated += ByteSize::from_bytes(record.bytes_moved);
        self.stats.migration_time += record.migration_time;
        self.stats.fast_residency_peak = self
            .stats
            .fast_residency_peak
            .max(heap.tier_occupancy(self.fast_tier));
        self.stats.epoch_log.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::AddressRange;

    fn machine() -> MachineConfig {
        crate::harness::loaded_machine()
    }

    /// A heap with two 128 KiB objects in DDR and a 128 KiB MCDRAM budget.
    fn two_object_heap(m: &MachineConfig) -> (ProcessHeap, AddressRange, AddressRange) {
        let mut heap = ProcessHeap::new(m).unwrap();
        heap.set_capacity_cap(TierId::MCDRAM, ByteSize::from_kib(128))
            .unwrap();
        let (_, hot, _) = heap
            .malloc(
                ByteSize::from_kib(128),
                TierId::DDR,
                "hot",
                None,
                Nanos::ZERO,
            )
            .unwrap();
        let (_, cold, _) = heap
            .malloc(
                ByteSize::from_kib(128),
                TierId::DDR,
                "cold",
                None,
                Nanos::ZERO,
            )
            .unwrap();
        (heap, hot, cold)
    }

    fn hammer(range: AddressRange, passes: u32) -> impl Iterator<Item = MemoryAccess> {
        (0..passes).flat_map(move |_| {
            let elements = range.len.bytes() / 8;
            (0..elements).map(move |i| MemoryAccess::load(range.start.offset(i * 8), 8))
        })
    }

    #[test]
    fn runtime_promotes_the_hammered_object() {
        let m = machine();
        let (mut heap, hot, _) = two_object_heap(&m);
        let cfg = OnlineConfig::default().with_epoch_accesses(16_384);
        let mut rt = OnlineRuntime::new(&m, ByteSize::from_kib(128), cfg);
        assert_eq!(rt.fast_tier(), TierId::MCDRAM);
        let misses = rt.run(hammer(hot, 20), &mut heap);
        assert!(misses > 0);
        assert_eq!(heap.page_table().tier_of(hot.start), TierId::MCDRAM);
        let s = rt.stats();
        assert!(s.migrations >= 1);
        assert_eq!(s.rejected_moves, 0);
        assert!(s.samples > 0);
        assert!(s.migration_time > Nanos::ZERO);
        assert_eq!(s.epoch_log.len() as u64, s.epochs);
        assert!(rt.total_time() > rt.engine_stats().time);
        // Fast-tier traffic flows once the object has been promoted.
        assert!(rt.engine_stats().tier_traffic.bytes(TierId::MCDRAM) > 0);
    }

    #[test]
    fn disabled_runtime_never_touches_placement() {
        let m = machine();
        let (mut heap, hot, cold) = two_object_heap(&m);
        let cfg = OnlineConfig::disabled().with_epoch_accesses(8_192);
        let mut rt = OnlineRuntime::new(&m, ByteSize::from_kib(128), cfg);
        rt.run(hammer(hot, 10).chain(hammer(cold, 2)), &mut heap);
        assert_eq!(heap.page_table().tier_of(hot.start), TierId::DDR);
        assert_eq!(heap.page_table().tier_of(cold.start), TierId::DDR);
        assert_eq!(rt.stats().migrations, 0);
        assert_eq!(rt.stats().migration_time, Nanos::ZERO);
        assert_eq!(rt.total_time(), rt.engine_stats().time);
    }

    #[test]
    fn migration_charges_accumulate_into_total_time() {
        let m = machine();
        let (mut heap, hot, cold) = two_object_heap(&m);
        let cfg = OnlineConfig::default().with_epoch_accesses(16_384);
        let mut rt = OnlineRuntime::new(&m, ByteSize::from_kib(128), cfg);
        // Hammer A, then B: the hot set flips once, forcing a swap.
        rt.run(hammer(hot, 12).chain(hammer(cold, 12)), &mut heap);
        let s = rt.stats().clone();
        assert!(
            s.migrations >= 2,
            "expected at least promote + swap, got {}",
            s.migrations
        );
        let logged: f64 = s.epoch_log.iter().map(|e| e.migration_time.nanos()).sum();
        assert!((logged - s.migration_time.nanos()).abs() < 1e-6);
        let logged_bytes: u64 = s.epoch_log.iter().map(|e| e.bytes_moved).sum();
        assert_eq!(logged_bytes, s.bytes_migrated.bytes());
        // After the flip, the second object owns the fast tier.
        assert_eq!(heap.page_table().tier_of(cold.start), TierId::MCDRAM);
        assert_eq!(heap.page_table().tier_of(hot.start), TierId::DDR);
    }
}
