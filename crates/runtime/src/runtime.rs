//! The trace-driven online placement runtime.
//!
//! Each epoch the runtime (1) drives the [`TraceEngine`] over the next
//! window of accesses while a [`PebsSampler`] observes the LLC-miss stream,
//! (2) aggregates the samples into per-object heat through the heap's
//! live-object registry, (3) re-runs the advisor's selection against the
//! fast-tier budget, and (4) executes the migration delta through
//! [`ProcessHeap::migrate_object`], charging every move through the
//! [`MigrationCostModel`](crate::MigrationCostModel) and adding it to the
//! run's latency.

use crate::controller::{ObjectPlacement, PlacementController};
use crate::cost::MigrationCostModel;
use crate::OnlineConfig;
use hmsim_common::{Address, ByteSize, Nanos, TierId};
use hmsim_heap::ProcessHeap;
use hmsim_machine::{EngineStats, MachineConfig, MemoryAccess, TraceEngine};
use hmsim_pebs::{PebsEvent, PebsSampler, ProcessorFamily};

/// What one epoch did.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochRecord {
    /// Accesses simulated this epoch.
    pub accesses: u64,
    /// PEBS samples captured this epoch.
    pub samples: u64,
    /// Objects promoted to the fast tier.
    pub promotions: u32,
    /// Objects demoted out of the fast tier.
    pub demotions: u32,
    /// Bytes moved by this epoch's migrations.
    pub bytes_moved: u64,
    /// Latency charged for this epoch's migrations.
    pub migration_time: Nanos,
}

/// Aggregate statistics of one online run.
#[derive(Clone, Debug, Default)]
pub struct RuntimeStats {
    /// Epochs executed (including the final partial one).
    pub epochs: u64,
    /// Total accesses simulated.
    pub accesses: u64,
    /// Total PEBS samples observed.
    pub samples: u64,
    /// Migrations executed (promotions + demotions).
    pub migrations: u64,
    /// Total bytes moved between tiers.
    pub bytes_migrated: ByteSize,
    /// Total latency charged for migrations.
    pub migration_time: Nanos,
    /// Planned moves that the heap rejected (capacity races); the plan is
    /// conservative, so this should stay at zero.
    pub rejected_moves: u64,
    /// Per-epoch log (one entry per epoch; epochs are coarse, so this stays
    /// small even for paper-scale runs).
    pub epoch_log: Vec<EpochRecord>,
}

/// The epoch-driven online placement engine.
pub struct OnlineRuntime {
    engine: TraceEngine,
    sampler: PebsSampler,
    controller: PlacementController,
    cost: MigrationCostModel,
    fast_tier: TierId,
    fast_budget: ByteSize,
    stats: RuntimeStats,
}

impl OnlineRuntime {
    /// Build a runtime for `machine` with `fast_budget` bytes of fast-tier
    /// capacity at its disposal. The fast tier is the machine's
    /// highest-performance tier (MCDRAM on KNL).
    pub fn new(machine: &MachineConfig, fast_budget: ByteSize, cfg: OnlineConfig) -> Self {
        let fast_tier = machine
            .tiers
            .fastest()
            .map(|t| t.id)
            .unwrap_or(TierId::MCDRAM);
        let sampler = PebsSampler::new(
            ProcessorFamily::KnightsLanding,
            PebsEvent::LlcLoadMiss,
            cfg.pebs_period,
            hmsim_common::DetRng::new(cfg.seed),
        );
        OnlineRuntime {
            engine: TraceEngine::new(machine),
            sampler,
            cost: MigrationCostModel::with_streams(machine, cfg.migration_streams),
            controller: PlacementController::new(cfg),
            fast_tier,
            fast_budget,
            stats: RuntimeStats::default(),
        }
    }

    /// The fast tier this runtime promotes into.
    pub fn fast_tier(&self) -> TierId {
        self.fast_tier
    }

    /// The engine's accumulated simulation statistics.
    pub fn engine_stats(&self) -> &EngineStats {
        self.engine.stats()
    }

    /// The runtime's own statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Total simulated latency: the engine's execution-time estimate plus
    /// every migration charge.
    pub fn total_time(&self) -> Nanos {
        self.engine.stats().time + self.stats.migration_time
    }

    /// Drive the whole access stream through the epoch loop, mutating the
    /// heap's placement as the controller decides. Returns the total number
    /// of LLC misses, mirroring [`TraceEngine::run_stream`].
    pub fn run<I>(&mut self, accesses: I, heap: &mut ProcessHeap) -> u64
    where
        I: IntoIterator<Item = MemoryAccess>,
    {
        let mut it = accesses.into_iter();
        let misses_before = self.engine.stats().counters.llc_misses;
        let epoch_len = self.controller.config().epoch_accesses;
        // Sampled (address, weight) pairs of the current epoch; reused.
        let mut sampled: Vec<(Address, u64)> = Vec::new();

        loop {
            sampled.clear();
            let epoch_start = self.engine.stats().time;
            let mut consumed = 0u64;
            {
                let engine = &mut self.engine;
                let sampler = &mut self.sampler;
                let page_table = heap.page_table();
                while consumed < epoch_len {
                    let Some(acc) = it.next() else { break };
                    consumed += 1;
                    engine.access_with(&acc, page_table, |addr| {
                        if let Some(s) = sampler.observe(epoch_start, addr) {
                            sampled.push((addr, s.weight));
                        }
                    });
                }
            }
            if consumed == 0 {
                break;
            }
            self.stats.accesses += consumed;
            self.stats.epochs += 1;
            let record = self.close_epoch(heap, consumed, &sampled);
            self.stats.epoch_log.push(record);
            if consumed < epoch_len {
                break;
            }
        }
        self.engine.stats().counters.llc_misses - misses_before
    }

    /// Aggregate this epoch's samples into heat, plan and execute the
    /// migration delta.
    fn close_epoch(
        &mut self,
        heap: &mut ProcessHeap,
        accesses: u64,
        sampled: &[(Address, u64)],
    ) -> EpochRecord {
        let mut record = EpochRecord {
            accesses,
            samples: sampled.len() as u64,
            ..EpochRecord::default()
        };
        self.stats.samples += record.samples;
        for (addr, weight) in sampled {
            if let Some(obj) = heap.registry().find_containing(*addr) {
                self.controller.record(obj.id, *weight as f64);
            }
        }
        let live = ObjectPlacement::snapshot_live(heap);
        let plan = self
            .controller
            .end_epoch(&live, self.fast_tier, self.fast_budget);

        let slow_tier = heap.page_table().default_tier();
        for id in &plan.demotions {
            match heap.migrate_object(*id, slow_tier) {
                Ok(bytes) => {
                    record.demotions += 1;
                    record.bytes_moved += bytes.bytes();
                    record.migration_time += self.cost.charge(bytes, self.fast_tier, slow_tier);
                }
                Err(_) => self.stats.rejected_moves += 1,
            }
        }
        for id in &plan.promotions {
            match heap.migrate_object(*id, self.fast_tier) {
                Ok(bytes) => {
                    record.promotions += 1;
                    record.bytes_moved += bytes.bytes();
                    record.migration_time += self.cost.charge(bytes, slow_tier, self.fast_tier);
                }
                Err(_) => self.stats.rejected_moves += 1,
            }
        }
        self.stats.migrations += u64::from(record.promotions) + u64::from(record.demotions);
        self.stats.bytes_migrated += ByteSize::from_bytes(record.bytes_moved);
        self.stats.migration_time += record.migration_time;
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::AddressRange;

    fn machine() -> MachineConfig {
        crate::harness::loaded_machine()
    }

    /// A heap with two 128 KiB objects in DDR and a 128 KiB MCDRAM budget.
    fn two_object_heap(m: &MachineConfig) -> (ProcessHeap, AddressRange, AddressRange) {
        let mut heap = ProcessHeap::new(m).unwrap();
        heap.set_capacity_cap(TierId::MCDRAM, ByteSize::from_kib(128))
            .unwrap();
        let (_, hot, _) = heap
            .malloc(
                ByteSize::from_kib(128),
                TierId::DDR,
                "hot",
                None,
                Nanos::ZERO,
            )
            .unwrap();
        let (_, cold, _) = heap
            .malloc(
                ByteSize::from_kib(128),
                TierId::DDR,
                "cold",
                None,
                Nanos::ZERO,
            )
            .unwrap();
        (heap, hot, cold)
    }

    fn hammer(range: AddressRange, passes: u32) -> impl Iterator<Item = MemoryAccess> {
        (0..passes).flat_map(move |_| {
            let elements = range.len.bytes() / 8;
            (0..elements).map(move |i| MemoryAccess::load(range.start.offset(i * 8), 8))
        })
    }

    #[test]
    fn runtime_promotes_the_hammered_object() {
        let m = machine();
        let (mut heap, hot, _) = two_object_heap(&m);
        let cfg = OnlineConfig::default().with_epoch_accesses(16_384);
        let mut rt = OnlineRuntime::new(&m, ByteSize::from_kib(128), cfg);
        assert_eq!(rt.fast_tier(), TierId::MCDRAM);
        let misses = rt.run(hammer(hot, 20), &mut heap);
        assert!(misses > 0);
        assert_eq!(heap.page_table().tier_of(hot.start), TierId::MCDRAM);
        let s = rt.stats();
        assert!(s.migrations >= 1);
        assert_eq!(s.rejected_moves, 0);
        assert!(s.samples > 0);
        assert!(s.migration_time > Nanos::ZERO);
        assert_eq!(s.epoch_log.len() as u64, s.epochs);
        assert!(rt.total_time() > rt.engine_stats().time);
        // Fast-tier traffic flows once the object has been promoted.
        assert!(rt.engine_stats().tier_traffic.bytes(TierId::MCDRAM) > 0);
    }

    #[test]
    fn disabled_runtime_never_touches_placement() {
        let m = machine();
        let (mut heap, hot, cold) = two_object_heap(&m);
        let cfg = OnlineConfig::disabled().with_epoch_accesses(8_192);
        let mut rt = OnlineRuntime::new(&m, ByteSize::from_kib(128), cfg);
        rt.run(hammer(hot, 10).chain(hammer(cold, 2)), &mut heap);
        assert_eq!(heap.page_table().tier_of(hot.start), TierId::DDR);
        assert_eq!(heap.page_table().tier_of(cold.start), TierId::DDR);
        assert_eq!(rt.stats().migrations, 0);
        assert_eq!(rt.stats().migration_time, Nanos::ZERO);
        assert_eq!(rt.total_time(), rt.engine_stats().time);
    }

    #[test]
    fn migration_charges_accumulate_into_total_time() {
        let m = machine();
        let (mut heap, hot, cold) = two_object_heap(&m);
        let cfg = OnlineConfig::default().with_epoch_accesses(16_384);
        let mut rt = OnlineRuntime::new(&m, ByteSize::from_kib(128), cfg);
        // Hammer A, then B: the hot set flips once, forcing a swap.
        rt.run(hammer(hot, 12).chain(hammer(cold, 12)), &mut heap);
        let s = rt.stats().clone();
        assert!(
            s.migrations >= 2,
            "expected at least promote + swap, got {}",
            s.migrations
        );
        let logged: f64 = s.epoch_log.iter().map(|e| e.migration_time.nanos()).sum();
        assert!((logged - s.migration_time.nanos()).abs() < 1e-6);
        let logged_bytes: u64 = s.epoch_log.iter().map(|e| e.bytes_moved).sum();
        assert_eq!(logged_bytes, s.bytes_migrated.bytes());
        // After the flip, the second object owns the fast tier.
        assert_eq!(heap.page_table().tier_of(cold.start), TierId::MCDRAM);
        assert_eq!(heap.page_table().tier_of(hot.start), TierId::DDR);
    }
}
