//! Drivers that run the registered phased workloads online and under the
//! best static placement, so benches and tests compare like with like.
//!
//! The static side reproduces the paper's offline pipeline at trace scale:
//! a profiling run over DDR with the same PEBS sampler, the advisor's
//! selection over the profiled heat, then a fresh placement-honouring run.
//! The online side provisions the identical heap and lets the
//! [`OnlineRuntime`] migrate while the stream executes.

use crate::{OnlineConfig, OnlineRuntime, RuntimeStats};
use hmem_advisor::SelectionStrategy;
use hmsim_apps::PhasedWorkload;
use hmsim_common::{AddressRange, ByteSize, HmResult, Nanos, ObjectId, TierId};
use hmsim_heap::ProcessHeap;
use hmsim_machine::{MachineConfig, TierSet, TraceEngine};
use hmsim_pebs::{PebsEvent, PebsSampler, ProcessorFamily};

/// A machine for trace-driven placement studies, with *loaded* memory
/// latencies. The stock KNL numbers are unloaded load-to-use latencies
/// (DDR 130 ns, MCDRAM 155 ns); under the bandwidth saturation the online
/// runtime targets, KNL's DDR latency climbs past 300 ns while MCDRAM
/// sustains below 200 ns — that loaded gap is exactly the effect that makes
/// fast-tier placement pay, and the single-stream trace engine has to carry
/// it in its latency constants.
pub fn loaded_machine() -> MachineConfig {
    let mut m = MachineConfig::tiny_test();
    let mut ddr = hmsim_machine::TierSpec::knl_ddr();
    ddr.capacity = ByteSize::from_gib(1);
    ddr.latency = Nanos(320.0);
    let mut mc = hmsim_machine::TierSpec::knl_mcdram();
    mc.capacity = ByteSize::from_mib(64);
    mc.latency = Nanos(180.0);
    m.tiers = TierSet::new(vec![ddr, mc]).expect("distinct tier ids");
    m
}

/// A workload's objects allocated into a fresh heap (everything in DDR, the
/// fast tier capped at the budget).
pub struct Provisioned {
    /// The heap holding the workload's objects.
    pub heap: ProcessHeap,
    /// One range per workload object, in declaration order.
    pub ranges: Vec<AddressRange>,
    /// One object id per workload object, in declaration order.
    pub ids: Vec<ObjectId>,
}

/// Allocate a workload's objects into a fresh heap: everything starts in
/// DDR, and the fast tier's capacity is capped at `fast_budget`.
pub fn provision(
    workload: &PhasedWorkload,
    machine: &MachineConfig,
    fast_budget: ByteSize,
) -> HmResult<Provisioned> {
    let mut heap = ProcessHeap::new(machine)?;
    heap.set_capacity_cap(TierId::MCDRAM, fast_budget)?;
    let mut ranges = Vec::new();
    let mut ids = Vec::new();
    for (name, size) in workload.objects() {
        let (id, range, _) = heap.malloc(size, TierId::DDR, name, None, Nanos::ZERO)?;
        ranges.push(range);
        ids.push(id);
    }
    Ok(Provisioned { heap, ranges, ids })
}

/// Outcome of one static (non-migrating) run.
#[derive(Clone, Debug)]
pub struct StaticOutcome {
    /// Label of the placement (`"DDR"` or `"profiled/<strategy>"`).
    pub label: String,
    /// Simulated execution time.
    pub time: Nanos,
    /// LLC misses of the run.
    pub llc_misses: u64,
    /// Indices (into the workload's object list) promoted to the fast tier.
    pub promoted: Vec<usize>,
}

/// Run the workload once with the listed object indices promoted to the
/// fast tier before execution starts (the offline placement run).
pub fn run_static(
    workload: &PhasedWorkload,
    machine: &MachineConfig,
    fast_budget: ByteSize,
    promoted: &[usize],
    label: impl Into<String>,
) -> HmResult<StaticOutcome> {
    let mut p = provision(workload, machine, fast_budget)?;
    for &idx in promoted {
        p.heap.migrate_object(p.ids[idx], TierId::MCDRAM)?;
    }
    let mut engine = TraceEngine::new(machine);
    let misses = engine.run_stream(workload.stream(&p.ranges), p.heap.page_table());
    Ok(StaticOutcome {
        label: label.into(),
        time: engine.stats().time,
        llc_misses: misses,
        promoted: promoted.to_vec(),
    })
}

/// Profile the workload over an all-DDR placement with the runtime's PEBS
/// sampler, returning total heat (sample weight) per object index.
pub fn profile_heat(
    workload: &PhasedWorkload,
    machine: &MachineConfig,
    cfg: &OnlineConfig,
) -> HmResult<Vec<u64>> {
    let p = provision(workload, machine, ByteSize::ZERO)?;
    let mut engine = TraceEngine::new(machine);
    let mut sampler = PebsSampler::new(
        ProcessorFamily::KnightsLanding,
        PebsEvent::LlcLoadMiss,
        cfg.pebs_period,
        hmsim_common::DetRng::new(cfg.seed),
    );
    let mut heat = vec![0u64; p.ranges.len()];
    for acc in workload.stream(&p.ranges) {
        let ranges = &p.ranges;
        let heat = &mut heat;
        engine.access_with(&acc, p.heap.page_table(), |addr| {
            if let Some(s) = sampler.observe(Nanos::ZERO, addr) {
                if let Some(i) = ranges.iter().position(|r| r.contains(addr)) {
                    heat[i] += s.weight;
                }
            }
        });
    }
    Ok(heat)
}

/// The advisor's offline selection over profiled heat: rank with `strategy`,
/// pack page-aligned into the budget (same code path the online controller
/// re-runs each epoch).
pub fn select_static(
    workload: &PhasedWorkload,
    heat: &[u64],
    fast_budget: ByteSize,
    strategy: SelectionStrategy,
) -> Vec<usize> {
    use hmsim_analysis::{ObjectStats, ReportedKind};
    let objects = workload.objects();
    let stats: Vec<ObjectStats> = objects
        .iter()
        .zip(heat)
        .map(|((name, size), h)| ObjectStats {
            name: name.clone(),
            site: None,
            kind: ReportedKind::Dynamic,
            max_size: *size,
            min_size: *size,
            llc_misses: *h,
            samples: 0,
            allocation_count: 1,
        })
        .collect();
    let refs: Vec<&ObjectStats> = stats.iter().collect();
    let total: u64 = heat.iter().sum();
    let ranked = match strategy {
        SelectionStrategy::Misses { threshold_percent } => {
            hmem_advisor::greedy::rank_by_misses(&refs, total, threshold_percent)
        }
        _ => hmem_advisor::greedy::rank_by_density(&refs),
    };
    hmem_advisor::greedy::pack(&refs, &ranked, Some(fast_budget)).0
}

/// The best static placement the offline pipeline can produce: the better of
/// DDR-only and the profile → advise → re-run placement.
pub fn best_static(
    workload: &PhasedWorkload,
    machine: &MachineConfig,
    fast_budget: ByteSize,
    cfg: &OnlineConfig,
) -> HmResult<StaticOutcome> {
    let ddr = run_static(workload, machine, fast_budget, &[], "DDR")?;
    let heat = profile_heat(workload, machine, cfg)?;
    let promoted = select_static(workload, &heat, fast_budget, cfg.strategy);
    let profiled = run_static(
        workload,
        machine,
        fast_budget,
        &promoted,
        format!("profiled/{}", cfg.strategy),
    )?;
    Ok(if profiled.time < ddr.time {
        profiled
    } else {
        ddr
    })
}

/// Outcome of one online (migrating) run.
#[derive(Clone, Debug)]
pub struct OnlineOutcome {
    /// Total simulated time including migration charges.
    pub time: Nanos,
    /// LLC misses of the run.
    pub llc_misses: u64,
    /// The runtime's statistics.
    pub stats: RuntimeStats,
}

/// Run the workload under the online migration runtime.
pub fn run_online(
    workload: &PhasedWorkload,
    machine: &MachineConfig,
    fast_budget: ByteSize,
    cfg: OnlineConfig,
) -> HmResult<OnlineOutcome> {
    let mut p = provision(workload, machine, fast_budget)?;
    let mut rt = OnlineRuntime::new(machine, fast_budget, cfg);
    let misses = rt.run(workload.stream(&p.ranges), &mut p.heap);
    Ok(OnlineOutcome {
        time: rt.total_time(),
        llc_misses: misses,
        stats: rt.stats().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_apps::phased_workloads;

    const TEST_ARRAY: ByteSize = ByteSize::from_kib(64);

    #[test]
    fn loaded_machine_carries_the_loaded_latency_gap() {
        let m = loaded_machine();
        m.validate().unwrap();
        let ddr = m.tiers.get(TierId::DDR).unwrap();
        let mc = m.tiers.get(TierId::MCDRAM).unwrap();
        assert!(
            ddr.latency > mc.latency,
            "loaded DDR must be slower than loaded MCDRAM"
        );
        assert_eq!(m.tiers.fastest().unwrap().id, TierId::MCDRAM);
    }

    #[test]
    fn provision_places_everything_in_ddr_under_the_cap() {
        let m = loaded_machine();
        let w = &phased_workloads(TEST_ARRAY)[0];
        let p = provision(w, &m, w.hot_set_size()).unwrap();
        assert_eq!(p.ranges.len(), w.objects().len());
        for r in &p.ranges {
            assert_eq!(p.heap.page_table().tier_of(r.start), TierId::DDR);
        }
        assert_eq!(p.heap.tier_occupancy(TierId::MCDRAM), ByteSize::ZERO);
    }

    #[test]
    fn profiled_static_promotes_the_steady_hot_set() {
        let m = loaded_machine();
        let w = hmsim_apps::phased_workload_by_name("steady-triad", TEST_ARRAY).unwrap();
        let cfg = OnlineConfig::default();
        let heat = profile_heat(&w, &m, &cfg).unwrap();
        assert!(heat.iter().all(|&h| h > 0), "all three arrays are hot");
        let sel = select_static(&w, &heat, w.hot_set_size(), cfg.strategy);
        assert_eq!(sel.len(), 3, "the whole triad fits the budget");
        let best = best_static(&w, &m, w.hot_set_size(), &cfg).unwrap();
        assert!(best.label.starts_with("profiled/"));
        assert_eq!(best.promoted.len(), 3);
    }

    #[test]
    fn online_beats_best_static_on_the_rotating_triad() {
        let m = loaded_machine();
        let w = hmsim_apps::phased_workload_by_name("rotating-triad", TEST_ARRAY).unwrap();
        let budget = w.hot_set_size();
        let cfg = OnlineConfig::default().with_epoch_accesses(8_192);
        let stat = best_static(&w, &m, budget, &cfg).unwrap();
        let online = run_online(&w, &m, budget, cfg).unwrap();
        assert!(online.stats.migrations > 0);
        assert!(
            online.time < stat.time,
            "online {} vs best static {} ({})",
            online.time,
            stat.time,
            stat.label
        );
    }
}
