//! The migration cost model: bytes moved × per-tier bandwidth charge.
//!
//! A migration reads every page from the source tier and writes it to the
//! destination tier, so the charge is `bytes/bw(src) + bytes/bw(dst)`. The
//! per-tier migration bandwidth is the tier's *per-core* streaming bandwidth
//! times the number of migration threads: page migration (`move_pages`-style)
//! is a memcpy performed by a handful of kernel threads, not the whole
//! machine, and must not be credited with the tier's aggregate peak.

use hmsim_common::{ByteSize, Nanos, TierId};
use hmsim_machine::{BandwidthModel, MachineConfig, MAX_TIERS};

/// Per-tier bandwidth charges for object migration.
#[derive(Clone, Debug)]
pub struct MigrationCostModel {
    /// Migration bandwidth per tier id, GB/s.
    bw_gbs: [f64; MAX_TIERS],
    /// Fallback for tier ids beyond the table (slowest tier's bandwidth).
    fallback_gbs: f64,
}

impl MigrationCostModel {
    /// Build the model for a machine, with one migration thread.
    pub fn new(machine: &MachineConfig) -> Self {
        Self::with_streams(machine, 1)
    }

    /// Build the model with `streams` parallel migration threads.
    pub fn with_streams(machine: &MachineConfig, streams: u32) -> Self {
        let streams = f64::from(streams.max(1));
        let slowest = machine
            .tiers
            .slowest()
            .map(|t| t.per_core_bandwidth_gbs)
            .unwrap_or(1.0);
        let fallback_gbs = slowest * streams;
        let mut bw_gbs = [fallback_gbs; MAX_TIERS];
        for tier in machine.tiers.iter() {
            if tier.id.index() < MAX_TIERS {
                // Cap at the tier's aggregate peak: many streams cannot draw
                // more than the memory system provides.
                bw_gbs[tier.id.index()] =
                    (tier.per_core_bandwidth_gbs * streams).min(tier.peak_bandwidth_gbs);
            }
        }
        MigrationCostModel {
            bw_gbs,
            fallback_gbs,
        }
    }

    fn bandwidth(&self, tier: TierId) -> f64 {
        self.bw_gbs
            .get(tier.index())
            .copied()
            .unwrap_or(self.fallback_gbs)
    }

    /// Latency charged for moving `bytes` from `from` to `to`: the read leg
    /// plus the write leg, each at the owning tier's migration bandwidth.
    pub fn charge(&self, bytes: ByteSize, from: TierId, to: TierId) -> Nanos {
        let b = bytes.bytes() as f64;
        BandwidthModel::transfer_time(b, self.bandwidth(from))
            + BandwidthModel::transfer_time(b, self.bandwidth(to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_is_linear_and_charges_both_legs() {
        let m = MigrationCostModel::new(&MachineConfig::knl_7250());
        let one = m.charge(ByteSize::from_mib(1), TierId::DDR, TierId::MCDRAM);
        let two = m.charge(ByteSize::from_mib(2), TierId::DDR, TierId::MCDRAM);
        assert!(one.nanos() > 0.0);
        assert!((two.nanos() / one.nanos() - 2.0).abs() < 1e-9);
        // Symmetric: the same two legs are paid in either direction.
        let back = m.charge(ByteSize::from_mib(1), TierId::MCDRAM, TierId::DDR);
        assert!((back.nanos() - one.nanos()).abs() < 1e-9);
        assert_eq!(
            m.charge(ByteSize::ZERO, TierId::DDR, TierId::MCDRAM),
            Nanos::ZERO
        );
    }

    #[test]
    fn more_streams_move_faster_but_saturate_at_peak() {
        let machine = MachineConfig::knl_7250();
        let one = MigrationCostModel::with_streams(&machine, 1);
        let four = MigrationCostModel::with_streams(&machine, 4);
        let huge = MigrationCostModel::with_streams(&machine, 10_000);
        let b = ByteSize::from_mib(64);
        let t1 = one.charge(b, TierId::DDR, TierId::MCDRAM);
        let t4 = four.charge(b, TierId::DDR, TierId::MCDRAM);
        let tmax = huge.charge(b, TierId::DDR, TierId::MCDRAM);
        assert!(t4 < t1);
        assert!(tmax < t4);
        // Saturation: the DDR leg alone cannot beat DDR peak bandwidth.
        let floor = BandwidthModel::transfer_time(b.bytes() as f64, 90.0);
        assert!(tmax >= floor);
    }

    #[test]
    fn unknown_tier_uses_the_fallback_bandwidth() {
        let m = MigrationCostModel::new(&MachineConfig::tiny_test());
        let t = m.charge(ByteSize::from_mib(1), TierId(77), TierId::DDR);
        assert!(t.nanos() > 0.0);
    }
}
