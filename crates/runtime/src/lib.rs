//! # hmsim-runtime
//!
//! The online placement runtime: the layer that turns the paper's one-shot
//! profile → advise → re-run pipeline into a closed *observation → control*
//! loop. Instead of deciding data placement once, offline, the runtime
//! interleaves simulation with decision-making:
//!
//! 1. **observe** — an epoch of execution runs on the trace engine while a
//!    PEBS sampler watches the LLC-miss stream;
//! 2. **aggregate** — samples resolve to live data objects through the heap
//!    registry and accumulate into exponentially-decayed per-object heat;
//! 3. **decide** — the advisor's knapsack/greedy selection re-runs against
//!    the fast-tier budget, with hysteresis (minimum residency, a heat
//!    deadband protecting incumbents) so phase noise cannot thrash;
//! 4. **act** — the placement delta executes as `ProcessHeap::migrate_object`
//!    calls, each charged as bytes moved × per-tier bandwidth through the
//!    [`MigrationCostModel`] and added to the run's latency.
//!
//! With the per-epoch move budget set to zero the runtime degenerates to the
//! static engine — bit-for-bit, which is what the equivalence tests pin.
//!
//! The [`controller`] half (heat, hysteresis, selection) is engine-agnostic:
//! `hmem-core` drives the same [`PlacementController`] from the analytical
//! engine, with one application iteration as its epoch, which is how
//! `PlacementApproach::Online` joins the Figure-4 experiment grid.
//!
//! The [`multirank`] module scales the loop from one process to a node: R
//! independent shards (engine + heap + sampler per rank) advance in
//! lock-step epochs under a shared fast-tier budget split by the
//! [`arbiter`]'s policies — FCFS (`numactl`/first-touch), static per-rank
//! partition (the paper's deployment mode) or a node-global selection over
//! heat merged across ranks. With one rank every policy collapses to
//! [`OnlineRuntime`] bitwise.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arbiter;
pub mod config;
pub mod controller;
pub mod cost;
pub mod harness;
pub mod multirank;
pub mod runtime;

pub use arbiter::{ArbiterPolicy, NodeArbiter};
pub use config::OnlineConfig;
pub use controller::{EpochPlan, ObjectPlacement, PlacementController};
pub use cost::MigrationCostModel;
pub use multirank::{
    run_multirank, MultiRankConfig, MultiRankOutcome, MultiRankRuntime, RankOutcome,
};
pub use runtime::{EpochRecord, OnlineRuntime, RuntimeStats};
