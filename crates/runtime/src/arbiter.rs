//! Node-level fast-tier arbitration between ranks.
//!
//! A KNL node has *one* 16 GiB MCDRAM pool, but an MPI run places R
//! processes on it. Something has to decide how much of the pool each rank's
//! placement may plan against; this module is that something. Three policies
//! are modelled, matching the deployment modes the paper discusses:
//!
//! * [`ArbiterPolicy::Fcfs`] — first-come-first-served, the behaviour of
//!   `numactl -p 1` / first-touch: ranks are served in rank order each epoch
//!   and may claim the whole remaining pool. Great for whoever arrives
//!   first, starvation for whoever arrives last.
//! * [`ArbiterPolicy::Partition`] — static per-rank partition: every rank
//!   owns `node_budget / ranks`. This is how the paper deploys its framework
//!   on MPI applications (per-rank budgets in the Figure-4 grid), and it is
//!   optimal when ranks are symmetric.
//! * [`ArbiterPolicy::Global`] — one node-spanning selection: every rank's
//!   per-object heat is merged (time-ordered through the trace crate's
//!   k-way `MergedStream`) and a single advisor knapsack packs the whole
//!   node budget. This is what a node-level daemon could do, and it is the
//!   only policy that tracks *asymmetric* demand (see the rank-skew
//!   workload family).

use hmsim_common::ByteSize;
use std::fmt;

/// How the node-level fast-tier budget is split between ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ArbiterPolicy {
    /// First-come-first-served in rank order (models `numactl`/first-touch).
    Fcfs,
    /// Static per-rank partition, `node_budget / ranks` each (the paper's
    /// deployment mode and the default).
    #[default]
    Partition,
    /// One selection spanning every rank's objects against the whole node
    /// budget.
    Global,
}

impl ArbiterPolicy {
    /// All policies, in presentation order.
    pub const ALL: [ArbiterPolicy; 3] = [
        ArbiterPolicy::Fcfs,
        ArbiterPolicy::Partition,
        ArbiterPolicy::Global,
    ];
}

impl fmt::Display for ArbiterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArbiterPolicy::Fcfs => "fcfs",
            ArbiterPolicy::Partition => "partition",
            ArbiterPolicy::Global => "global",
        })
    }
}

/// The arbiter of one node's fast-tier pool.
#[derive(Clone, Debug)]
pub struct NodeArbiter {
    policy: ArbiterPolicy,
    node_budget: ByteSize,
    ranks: u32,
}

impl NodeArbiter {
    /// An arbiter over `node_budget` bytes of fast memory shared by `ranks`
    /// ranks.
    pub fn new(policy: ArbiterPolicy, node_budget: ByteSize, ranks: u32) -> Self {
        NodeArbiter {
            policy,
            node_budget,
            ranks: ranks.max(1),
        }
    }

    /// The arbitration policy.
    pub fn policy(&self) -> ArbiterPolicy {
        self.policy
    }

    /// The whole node's fast-tier budget.
    pub fn node_budget(&self) -> ByteSize {
        self.node_budget
    }

    /// Ranks sharing the pool.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// The static per-rank share, `node_budget / ranks`.
    pub fn partition_share(&self) -> ByteSize {
        self.node_budget / u64::from(self.ranks)
    }

    /// The hard per-rank capacity cap a shard's heap is provisioned with.
    /// Under the static partition no rank can ever exceed its share; under
    /// FCFS and the global policy a single rank may legitimately hold the
    /// whole pool (the *aggregate* is bounded by the per-epoch budgets).
    pub fn rank_cap(&self) -> ByteSize {
        match self.policy {
            ArbiterPolicy::Partition => self.partition_share(),
            ArbiterPolicy::Fcfs | ArbiterPolicy::Global => self.node_budget,
        }
    }

    /// The budget rank `rank` may plan against this epoch. `residencies[r]`
    /// is rank r's current fast-tier occupancy; under FCFS the caller serves
    /// ranks in rank order, so earlier ranks' entries already reflect this
    /// epoch's moves and later ranks see only what is left.
    pub fn epoch_budget(&self, rank: u32, residencies: &[ByteSize]) -> ByteSize {
        match self.policy {
            ArbiterPolicy::Partition => self.partition_share(),
            // The global planner packs one knapsack for the whole node; the
            // per-rank question does not arise, so a rank asking anyway is
            // told the whole pool.
            ArbiterPolicy::Global => self.node_budget,
            ArbiterPolicy::Fcfs => {
                let used: ByteSize = residencies.iter().copied().sum();
                let mine = residencies
                    .get(rank as usize)
                    .copied()
                    .unwrap_or(ByteSize::ZERO);
                mine + self.node_budget.saturating_sub(used)
            }
        }
    }

    /// The budget the *analytic* runner (one modelled process standing in
    /// for R symmetric ranks) draws each epoch. Peers are clones of the
    /// modelled process, so they are assumed to hold the partition share
    /// each; with symmetric demand FCFS converges to exactly that share,
    /// and the global knapsack degenerates to it too. The policies only
    /// separate under *asymmetric* demand, which the trace-driven multi-rank
    /// runner models rank by rank.
    pub fn analytic_budget(&self, my_residency: ByteSize) -> ByteSize {
        match self.policy {
            ArbiterPolicy::Partition | ArbiterPolicy::Global => self.partition_share(),
            ArbiterPolicy::Fcfs => {
                let peers = self.partition_share() * u64::from(self.ranks - 1);
                my_residency + self.node_budget.saturating_sub(my_residency + peers)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIB: u64 = 1024;

    #[test]
    fn partition_gives_every_rank_the_same_share() {
        let a = NodeArbiter::new(ArbiterPolicy::Partition, ByteSize::from_kib(256), 4);
        let res = vec![ByteSize::ZERO; 4];
        for r in 0..4 {
            assert_eq!(a.epoch_budget(r, &res), ByteSize::from_kib(64));
        }
        assert_eq!(a.rank_cap(), ByteSize::from_kib(64));
    }

    #[test]
    fn fcfs_serves_in_rank_order_and_starves_the_tail() {
        let a = NodeArbiter::new(ArbiterPolicy::Fcfs, ByteSize::from_kib(256), 4);
        assert_eq!(a.rank_cap(), ByteSize::from_kib(256));
        // Nobody holds anything yet: rank 0 may take the whole pool.
        let mut res = vec![ByteSize::ZERO; 4];
        assert_eq!(a.epoch_budget(0, &res), ByteSize::from_kib(256));
        // Rank 0 took 192 KiB; rank 1 sees 64 KiB.
        res[0] = ByteSize::from_kib(192);
        assert_eq!(a.epoch_budget(1, &res), ByteSize::from_kib(64));
        // Rank 1 takes the rest; ranks 2 and 3 are starved but keep what
        // they already hold.
        res[1] = ByteSize::from_kib(64);
        assert_eq!(a.epoch_budget(2, &res), ByteSize::ZERO);
        res[3] = ByteSize::from_bytes(8 * KIB);
        assert_eq!(a.epoch_budget(3, &res), ByteSize::from_bytes(8 * KIB));
    }

    #[test]
    fn global_exposes_the_whole_pool_to_the_central_planner() {
        let a = NodeArbiter::new(ArbiterPolicy::Global, ByteSize::from_kib(256), 4);
        assert_eq!(
            a.epoch_budget(2, &[ByteSize::ZERO; 4]),
            ByteSize::from_kib(256)
        );
        assert_eq!(a.rank_cap(), ByteSize::from_kib(256));
    }

    #[test]
    fn single_rank_always_owns_the_full_pool() {
        for policy in ArbiterPolicy::ALL {
            let a = NodeArbiter::new(policy, ByteSize::from_kib(128), 1);
            assert_eq!(
                a.epoch_budget(0, &[ByteSize::ZERO]),
                ByteSize::from_kib(128)
            );
            assert_eq!(a.rank_cap(), ByteSize::from_kib(128));
            assert_eq!(a.analytic_budget(ByteSize::ZERO), ByteSize::from_kib(128));
        }
    }

    #[test]
    fn analytic_budget_with_symmetric_peers_reduces_to_the_share() {
        for policy in ArbiterPolicy::ALL {
            let a = NodeArbiter::new(policy, ByteSize::from_kib(256), 4);
            assert_eq!(a.analytic_budget(ByteSize::ZERO), ByteSize::from_kib(64));
            assert_eq!(
                a.analytic_budget(ByteSize::from_kib(64)),
                ByteSize::from_kib(64)
            );
        }
    }
}
