//! The per-epoch placement controller: heat aggregation, hysteresis and the
//! advisor-backed selection that turns observed heat into a migration plan.
//!
//! The controller is deliberately engine-agnostic: the trace-driven
//! [`OnlineRuntime`](crate::OnlineRuntime) feeds it PEBS sample weights, the
//! analytic runner in `hmem-core` feeds it per-iteration object miss counts,
//! and both execute the same plans through `ProcessHeap::migrate_object`.

use crate::config::OnlineConfig;
use hmem_advisor::{greedy, knapsack, SelectionStrategy};
use hmsim_analysis::{ObjectStats, ReportedKind};
use hmsim_common::{ByteSize, ObjectId, TierId};
use std::collections::{HashMap, HashSet};

/// Where one live object currently sits, as the controller sees it.
#[derive(Clone, Debug)]
pub struct ObjectPlacement {
    /// The object.
    pub id: ObjectId,
    /// Its name (tie-breaker for deterministic ranking).
    pub name: String,
    /// Its size.
    pub size: ByteSize,
    /// The tier its pages currently live in.
    pub tier: TierId,
}

impl ObjectPlacement {
    /// Snapshot every live object of a heap — the placement view both the
    /// trace-driven runtime and the analytic runner hand to
    /// [`PlacementController::end_epoch`].
    pub fn snapshot_live(heap: &hmsim_heap::ProcessHeap) -> Vec<ObjectPlacement> {
        heap.registry()
            .live()
            .into_iter()
            .map(|o| ObjectPlacement {
                id: o.id,
                name: o.name.clone(),
                size: o.size(),
                tier: o.tier,
            })
            .collect()
    }
}

/// The migration plan for one epoch. Demotions are ordered first: they free
/// the fast-tier capacity the promotions consume.
#[derive(Clone, Debug, Default)]
pub struct EpochPlan {
    /// Objects to evict from the fast tier (coldest first).
    pub demotions: Vec<ObjectId>,
    /// Objects to move into the fast tier (hottest first).
    pub promotions: Vec<ObjectId>,
}

impl EpochPlan {
    /// Whether the plan moves anything.
    pub fn is_empty(&self) -> bool {
        self.demotions.is_empty() && self.promotions.is_empty()
    }

    /// Total moves in the plan.
    pub fn moves(&self) -> usize {
        self.demotions.len() + self.promotions.len()
    }
}

/// Epoch-driven placement decision engine with hysteresis.
#[derive(Clone, Debug)]
pub struct PlacementController {
    cfg: OnlineConfig,
    /// Decayed per-object heat (sample weights / miss counts).
    heat: HashMap<ObjectId, f64>,
    /// Epoch at which each object last migrated (for min-residency pinning).
    moved_at: HashMap<ObjectId, u64>,
    /// Epochs completed.
    epoch: u64,
}

impl PlacementController {
    /// Create a controller.
    pub fn new(cfg: OnlineConfig) -> Self {
        PlacementController {
            cfg,
            heat: HashMap::new(),
            moved_at: HashMap::new(),
            epoch: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OnlineConfig {
        &self.cfg
    }

    /// Epochs completed so far.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// Accumulate `weight` units of heat on `id` (a PEBS sample weight or a
    /// miss count attributed to the object during the current epoch).
    pub fn record(&mut self, id: ObjectId, weight: f64) {
        if weight > 0.0 {
            *self.heat.entry(id).or_insert(0.0) += weight;
        }
    }

    /// Current decayed heat of an object.
    pub fn heat_of(&self, id: ObjectId) -> f64 {
        self.heat.get(&id).copied().unwrap_or(0.0)
    }

    /// Close the current epoch: re-run the advisor's selection over the
    /// accumulated heat, derive the migration delta against the placement in
    /// `live`, apply hysteresis and the per-epoch move budget, decay the heat
    /// and return the plan. `fast_budget` is the fast tier's byte budget.
    pub fn end_epoch(
        &mut self,
        live: &[ObjectPlacement],
        fast_tier: TierId,
        fast_budget: ByteSize,
    ) -> EpochPlan {
        self.epoch += 1;
        // Heat and pinning state for objects that died stops mattering.
        let live_ids: HashSet<ObjectId> = live.iter().map(|o| o.id).collect();
        self.heat.retain(|id, _| live_ids.contains(id));
        self.moved_at.retain(|id, _| live_ids.contains(id));

        let plan = if self.cfg.migrations_enabled() {
            self.plan(live, fast_tier, fast_budget)
        } else {
            EpochPlan::default()
        };

        for h in self.heat.values_mut() {
            *h *= self.cfg.heat_decay;
        }
        plan
    }

    /// An object that moved less than `min_residency_epochs` ago is pinned
    /// to the tier it is in.
    fn pinned(&self, id: ObjectId) -> bool {
        self.moved_at
            .get(&id)
            .map(|at| self.epoch - at < self.cfg.min_residency_epochs)
            .unwrap_or(false)
    }

    /// Effective heat used for ranking: incumbents of the fast tier get the
    /// deadband bonus, so a challenger must out-heat them by that margin.
    fn effective_heat(&self, obj: &ObjectPlacement, fast_tier: TierId) -> f64 {
        let h = self.heat_of(obj.id);
        if obj.tier == fast_tier {
            h * (1.0 + self.cfg.heat_deadband.max(0.0))
        } else {
            h
        }
    }

    /// Run the advisor's selection over the unpinned candidates and pack the
    /// winners into the budget left after pinned fast-tier residents.
    fn select_target(
        &self,
        candidates: &[&ObjectPlacement],
        fast_tier: TierId,
        budget: ByteSize,
    ) -> Vec<ObjectId> {
        let stats: Vec<ObjectStats> = candidates
            .iter()
            .map(|o| ObjectStats {
                name: o.name.clone(),
                site: None,
                kind: ReportedKind::Dynamic,
                max_size: o.size,
                min_size: o.size,
                llc_misses: self.effective_heat(o, fast_tier).round() as u64,
                samples: 0,
                allocation_count: 1,
            })
            .collect();
        let refs: Vec<&ObjectStats> = stats.iter().collect();
        let total: u64 = refs.iter().map(|s| s.llc_misses).sum();
        let selected: Vec<usize> = match self.cfg.strategy {
            SelectionStrategy::Misses { threshold_percent } => {
                let ranked = greedy::rank_by_misses(&refs, total, threshold_percent);
                greedy::pack(&refs, &ranked, Some(budget)).0
            }
            SelectionStrategy::Density => {
                let ranked = greedy::rank_by_density(&refs);
                greedy::pack(&refs, &ranked, Some(budget)).0
            }
            SelectionStrategy::ExactKnapsack => {
                let items: Vec<knapsack::Item> = refs
                    .iter()
                    .map(|s| knapsack::Item {
                        weight_pages: s.max_size.pages(),
                        value: s.llc_misses,
                    })
                    .collect();
                match knapsack::solve_exact(&items, budget.bytes() / hmsim_common::PAGE_SIZE) {
                    Ok(sol) => sol.selected,
                    // The DP refuses oversized instances; the density greedy
                    // is the advisor's own fallback for that regime.
                    Err(_) => {
                        let ranked = greedy::rank_by_density(&refs);
                        greedy::pack(&refs, &ranked, Some(budget)).0
                    }
                }
            }
        };
        selected.into_iter().map(|i| candidates[i].id).collect()
    }

    fn plan(&mut self, live: &[ObjectPlacement], fast_tier: TierId, budget: ByteSize) -> EpochPlan {
        // Pinned fast-tier residents consume budget no matter what.
        let pinned_fast: u64 = live
            .iter()
            .filter(|o| o.tier == fast_tier && self.pinned(o.id))
            .map(|o| o.size.page_aligned().bytes())
            .sum();
        let free_budget = budget.saturating_sub(ByteSize::from_bytes(pinned_fast));
        let candidates: Vec<&ObjectPlacement> =
            live.iter().filter(|o| !self.pinned(o.id)).collect();
        let target: HashSet<ObjectId> = self
            .select_target(&candidates, fast_tier, free_budget)
            .into_iter()
            .collect();

        // Promotion queue: hottest first. Demotion queue: coldest first.
        // Names break ties so plans are deterministic across runs.
        let mut promote: Vec<&&ObjectPlacement> = candidates
            .iter()
            .filter(|o| target.contains(&o.id) && o.tier != fast_tier)
            .collect();
        promote.sort_by(|a, b| {
            self.heat_of(b.id)
                .partial_cmp(&self.heat_of(a.id))
                .expect("heat is never NaN")
                .then_with(|| a.name.cmp(&b.name))
        });
        let mut demote: Vec<&&ObjectPlacement> = candidates
            .iter()
            .filter(|o| !target.contains(&o.id) && o.tier == fast_tier)
            .collect();
        demote.sort_by(|a, b| {
            self.heat_of(a.id)
                .partial_cmp(&self.heat_of(b.id))
                .expect("heat is never NaN")
                .then_with(|| a.name.cmp(&b.name))
        });

        // Fast-tier bytes currently in use (everything resident, pinned or
        // not); demotions hand bytes back as they are committed.
        let used: u64 = live
            .iter()
            .filter(|o| o.tier == fast_tier)
            .map(|o| o.size.page_aligned().bytes())
            .sum();
        let mut avail = budget.bytes() as i64 - used as i64;
        let mut moves_left = self.cfg.max_moves_per_epoch as usize;
        let mut plan = EpochPlan::default();
        let mut demote_cursor = 0usize;

        for p in promote {
            if moves_left == 0 {
                break;
            }
            let need = p.size.page_aligned().bytes() as i64;
            // Peek how many demotions it takes to fit this promotion; commit
            // only if the whole package fits the move budget — demoting
            // without promoting would pay migration cost for nothing.
            let mut take = 0usize;
            let mut freed = 0i64;
            while avail + freed < need && demote_cursor + take < demote.len() {
                freed += demote[demote_cursor + take].size.page_aligned().bytes() as i64;
                take += 1;
            }
            if avail + freed < need {
                continue;
            }
            if moves_left < take + 1 {
                // This package is too expensive for the remaining move
                // budget, but a colder, smaller promotion further down may
                // still fit into existing free space — keep scanning instead
                // of starving it forever (the plan is deterministic, so a
                // `break` here would repeat every epoch).
                continue;
            }
            for d in &demote[demote_cursor..demote_cursor + take] {
                plan.demotions.push(d.id);
                self.moved_at.insert(d.id, self.epoch);
            }
            demote_cursor += take;
            avail += freed - need;
            moves_left -= take + 1;
            plan.promotions.push(p.id);
            self.moved_at.insert(p.id, self.epoch);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(id: u32, name: &str, kib: u64, tier: TierId) -> ObjectPlacement {
        ObjectPlacement {
            id: ObjectId(id),
            name: name.to_string(),
            size: ByteSize::from_kib(kib),
            tier,
        }
    }

    fn controller() -> PlacementController {
        PlacementController::new(OnlineConfig {
            min_residency_epochs: 2,
            heat_deadband: 0.25,
            heat_decay: 0.5,
            max_moves_per_epoch: 8,
            ..OnlineConfig::default()
        })
    }

    #[test]
    fn hot_object_is_promoted_within_budget() {
        let mut c = controller();
        let live = vec![
            obj(1, "hot", 64, TierId::DDR),
            obj(2, "cold", 64, TierId::DDR),
        ];
        c.record(ObjectId(1), 1000.0);
        c.record(ObjectId(2), 10.0);
        let plan = c.end_epoch(&live, TierId::MCDRAM, ByteSize::from_kib(64));
        assert_eq!(plan.promotions, vec![ObjectId(1)]);
        assert!(plan.demotions.is_empty());
    }

    #[test]
    fn disabled_controller_never_plans_moves() {
        let mut c = PlacementController::new(OnlineConfig::disabled());
        let live = vec![obj(1, "hot", 64, TierId::DDR)];
        c.record(ObjectId(1), 1e6);
        for _ in 0..5 {
            assert!(c
                .end_epoch(&live, TierId::MCDRAM, ByteSize::from_mib(1))
                .is_empty());
        }
    }

    #[test]
    fn deadband_keeps_marginally_colder_incumbents() {
        let mut c = controller();
        let live = vec![
            obj(1, "incumbent", 64, TierId::MCDRAM),
            obj(2, "challenger", 64, TierId::DDR),
        ];
        // Challenger is 10% hotter — inside the 25% deadband.
        c.record(ObjectId(1), 1000.0);
        c.record(ObjectId(2), 1100.0);
        let plan = c.end_epoch(&live, TierId::MCDRAM, ByteSize::from_kib(64));
        assert!(plan.is_empty(), "deadband should protect the incumbent");
        // 50% hotter beats the deadband.
        c.record(ObjectId(1), 1000.0);
        c.record(ObjectId(2), 1500.0);
        let plan = c.end_epoch(&live, TierId::MCDRAM, ByteSize::from_kib(64));
        assert_eq!(plan.demotions, vec![ObjectId(1)]);
        assert_eq!(plan.promotions, vec![ObjectId(2)]);
    }

    #[test]
    fn min_residency_pins_recent_movers() {
        let mut c = controller();
        let mut live = vec![
            obj(1, "a", 64, TierId::DDR),
            obj(2, "b", 64, TierId::MCDRAM),
        ];
        c.record(ObjectId(1), 5000.0);
        c.record(ObjectId(2), 10.0);
        let plan = c.end_epoch(&live, TierId::MCDRAM, ByteSize::from_kib(64));
        assert_eq!(plan.promotions, vec![ObjectId(1)]);
        live[0].tier = TierId::MCDRAM;
        live[1].tier = TierId::DDR;
        // Next epoch the old incumbent is suddenly hot again — but both just
        // moved, so the plan must stay empty until residency expires.
        c.record(ObjectId(2), 50_000.0);
        let plan = c.end_epoch(&live, TierId::MCDRAM, ByteSize::from_kib(64));
        assert!(plan.is_empty(), "residency must pin fresh movers");
        // One epoch later the swap is allowed.
        c.record(ObjectId(2), 50_000.0);
        let plan = c.end_epoch(&live, TierId::MCDRAM, ByteSize::from_kib(64));
        assert_eq!(plan.promotions, vec![ObjectId(2)]);
        assert_eq!(plan.demotions, vec![ObjectId(1)]);
    }

    #[test]
    fn move_budget_bounds_epoch_churn() {
        let mut c = PlacementController::new(OnlineConfig {
            max_moves_per_epoch: 2,
            ..OnlineConfig::default()
        });
        let live: Vec<ObjectPlacement> = (0..6)
            .map(|i| obj(i, &format!("o{i}"), 64, TierId::DDR))
            .collect();
        for i in 0..6 {
            c.record(ObjectId(i), 1000.0 + f64::from(i));
        }
        let plan = c.end_epoch(&live, TierId::MCDRAM, ByteSize::from_mib(1));
        assert!(plan.moves() <= 2, "moves {:?}", plan);
        assert_eq!(plan.promotions.len(), 2);
    }

    #[test]
    fn equal_heat_never_thrashes() {
        let mut c = controller();
        let mut live: Vec<ObjectPlacement> = (0..4)
            .map(|i| obj(i, &format!("seg{i}"), 64, TierId::DDR))
            .collect();
        // Uniform heat, budget for two objects: after the initial fill the
        // placement must be stable forever.
        for epoch in 0..6 {
            for i in 0..4 {
                c.record(ObjectId(i), 100.0);
            }
            let plan = c.end_epoch(&live, TierId::MCDRAM, ByteSize::from_kib(128));
            for id in &plan.promotions {
                live.iter_mut().find(|o| o.id == *id).unwrap().tier = TierId::MCDRAM;
            }
            for id in &plan.demotions {
                live.iter_mut().find(|o| o.id == *id).unwrap().tier = TierId::DDR;
            }
            if epoch > 0 {
                assert!(plan.is_empty(), "epoch {epoch} churned: {plan:?}");
            }
        }
        assert_eq!(live.iter().filter(|o| o.tier == TierId::MCDRAM).count(), 2);
    }

    #[test]
    fn exact_knapsack_strategy_plans_optimally() {
        let mut c = PlacementController::new(OnlineConfig {
            strategy: SelectionStrategy::ExactKnapsack,
            ..OnlineConfig::default()
        });
        // Greedy-by-density takes the dense 12 KiB object (920) and can fit
        // nothing else in the 16 KiB budget; exact packs the two 8 KiB
        // objects instead (600 + 500 = 1100).
        let live = vec![
            obj(1, "dense", 12, TierId::DDR),
            obj(2, "mid1", 8, TierId::DDR),
            obj(3, "mid2", 8, TierId::DDR),
        ];
        c.record(ObjectId(1), 920.0);
        c.record(ObjectId(2), 600.0);
        c.record(ObjectId(3), 500.0);
        let plan = c.end_epoch(&live, TierId::MCDRAM, ByteSize::from_kib(16));
        assert_eq!(plan.promotions.len(), 2);
        assert!(plan.promotions.contains(&ObjectId(2)));
        assert!(plan.promotions.contains(&ObjectId(3)));
    }

    #[test]
    fn heat_decays_and_dead_objects_are_pruned() {
        let mut c = controller();
        c.record(ObjectId(1), 100.0);
        let live = vec![obj(1, "x", 64, TierId::DDR)];
        c.end_epoch(&live, TierId::MCDRAM, ByteSize::ZERO);
        assert!((c.heat_of(ObjectId(1)) - 50.0).abs() < 1e-9);
        // Object 1 died: its state disappears on the next epoch close.
        c.end_epoch(&[], TierId::MCDRAM, ByteSize::ZERO);
        assert_eq!(c.heat_of(ObjectId(1)), 0.0);
        assert_eq!(c.epochs(), 2);
    }
}
