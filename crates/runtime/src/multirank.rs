//! The rank-sharded simulation path.
//!
//! An MPI run is R independent processes sharing one node; this module
//! simulates it as R independent shards — each with its own
//! [`TraceEngine`](hmsim_machine::TraceEngine), [`ProcessHeap`] and PEBS
//! sampler, wrapped in an [`OnlineRuntime`] — advancing in lock-step epochs
//! under a shared node-level fast-tier budget enforced by the
//! [`NodeArbiter`].
//!
//! Each node epoch has two halves:
//!
//! 1. **observe** (parallel) — every active shard drives its next window of
//!    accesses through its own engine while its sampler watches the miss
//!    stream; shards are independent, so this half fans out over worker
//!    threads via `parallel_map` (re-exported as `hmem_core::parallel_map`);
//! 2. **arbitrate + commit** (serial, deterministic) — the arbiter hands
//!    each rank its budget and the shards execute their migration deltas in
//!    rank order. Under [`ArbiterPolicy::Global`] the per-rank samples are
//!    first time-ordered across ranks through the trace crate's k-way
//!    [`MergedStream`] and folded into one node-wide heat map, and a single
//!    controller packs one knapsack spanning every rank's objects.
//!
//! With one rank the epoch schedule, budgets and plans collapse to exactly
//! what [`OnlineRuntime::run`] does, whatever the policy — the
//! `multirank_equivalence` integration test pins that bitwise.

use crate::arbiter::{ArbiterPolicy, NodeArbiter};
use crate::controller::{EpochPlan, ObjectPlacement, PlacementController};
use crate::harness::provision;
use crate::{OnlineConfig, OnlineRuntime, RuntimeStats};
use hmsim_apps::MultiRankWorkload;
use hmsim_common::{parallel_map, ByteSize, HmResult, Nanos, ObjectId, TierId};
use hmsim_heap::ProcessHeap;
use hmsim_machine::{EngineStats, MachineConfig, MemoryAccess};
use hmsim_pebs::RawSample;
use hmsim_trace::{MergedStream, SampleRecord, TraceEvent};

/// Per-rank object ids are globalized by offsetting with the rank so one
/// controller can plan across every shard's objects. Rank 0 keeps its ids
/// unchanged, which is what makes the single-rank global path bitwise
/// identical to the per-rank controller.
const RANK_ID_STRIDE: u32 = 1 << 22;

fn global_id(rank: u32, id: ObjectId) -> ObjectId {
    debug_assert!(id.0 < RANK_ID_STRIDE, "object id overflows the rank stride");
    debug_assert!(
        rank < u32::MAX / RANK_ID_STRIDE,
        "rank {rank} overflows the globalized id space"
    );
    ObjectId(rank * RANK_ID_STRIDE + id.0)
}

fn split_global_id(id: ObjectId) -> (u32, ObjectId) {
    (id.0 / RANK_ID_STRIDE, ObjectId(id.0 % RANK_ID_STRIDE))
}

/// Configuration of one multi-rank run.
#[derive(Clone, Debug)]
pub struct MultiRankConfig {
    /// How the node-level fast-tier budget is arbitrated between ranks.
    pub policy: ArbiterPolicy,
    /// The *node's* fast-tier budget, shared by every rank.
    pub node_fast_budget: ByteSize,
    /// Per-shard epoch-loop knobs. Shard r's sampler is seeded with
    /// `online.seed + r`, so rank 0 reproduces the single-rank runtime.
    pub online: OnlineConfig,
    /// Fan the observation half of each epoch out over worker threads
    /// (`false` = serial reference, used by the scaling bench).
    pub parallel: bool,
}

impl MultiRankConfig {
    /// A configuration with default epoch knobs.
    pub fn new(policy: ArbiterPolicy, node_fast_budget: ByteSize) -> Self {
        MultiRankConfig {
            policy,
            node_fast_budget,
            online: OnlineConfig::default(),
            parallel: true,
        }
    }

    /// Override the epoch-loop knobs.
    pub fn with_online(mut self, online: OnlineConfig) -> Self {
        self.online = online;
        self
    }

    /// Disable the shard fan-out (serial reference).
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }
}

/// What one rank's shard did.
#[derive(Clone, Debug)]
pub struct RankOutcome {
    /// The rank.
    pub rank: u32,
    /// The shard's simulated time: engine execution estimate plus every
    /// migration charge.
    pub time: Nanos,
    /// LLC misses of the shard.
    pub llc_misses: u64,
    /// The shard engine's accumulated statistics.
    pub engine: EngineStats,
    /// The shard runtime's statistics (epochs, migrations, bytes moved).
    pub stats: RuntimeStats,
    /// Fast-tier bytes this rank's heap still held when its stream drained
    /// (the residency the Scenario facade reports as the rank's footprint).
    pub fast_residency: ByteSize,
}

/// Outcome of one multi-rank run.
#[derive(Clone, Debug)]
pub struct MultiRankOutcome {
    /// The policy that arbitrated the fast tier.
    pub policy: ArbiterPolicy,
    /// Per-rank outcomes, rank order.
    pub per_rank: Vec<RankOutcome>,
    /// Node epochs executed (windows in which at least one shard ran).
    pub node_epochs: u64,
}

impl MultiRankOutcome {
    /// The node's wall-clock estimate: ranks of an MPI application
    /// synchronize, so the slowest shard is the node (BSP assumption).
    pub fn node_time(&self) -> Nanos {
        self.per_rank
            .iter()
            .map(|r| r.time)
            .fold(Nanos::ZERO, Nanos::max)
    }

    /// Total LLC misses over all ranks.
    pub fn total_misses(&self) -> u64 {
        self.per_rank.iter().map(|r| r.llc_misses).sum()
    }

    /// Total migrations over all ranks.
    pub fn total_migrations(&self) -> u64 {
        self.per_rank.iter().map(|r| r.stats.migrations).sum()
    }
}

/// One rank's shard: an independent engine + sampler + heap advancing its
/// own access stream.
struct Shard {
    rank: u32,
    rt: OnlineRuntime,
    heap: ProcessHeap,
    stream: Box<dyn Iterator<Item = MemoryAccess> + Send>,
    /// Scratch buffer holding the current epoch's samples (reused).
    samples: Vec<RawSample>,
    /// Rank-prefixed object names for the global planner's deterministic
    /// tie-breaking, computed once at provisioning instead of re-formatted
    /// every epoch (objects allocated later fall back to formatting).
    global_names: std::collections::HashMap<ObjectId, String>,
    done: bool,
}

/// The epoch-lock-stepped multi-rank driver.
pub struct MultiRankRuntime {
    shards: Vec<Shard>,
    arbiter: NodeArbiter,
    /// The node-spanning controller (global policy only).
    global: Option<PlacementController>,
    epoch_len: u64,
    parallel: bool,
    fast_tier: TierId,
    node_epochs: u64,
}

impl MultiRankRuntime {
    /// Provision one shard per rank of `workload` on `machine`: every
    /// object starts in DDR and each shard's heap is capped at the
    /// arbiter's per-rank maximum.
    pub fn new(
        workload: &MultiRankWorkload,
        machine: &MachineConfig,
        cfg: MultiRankConfig,
    ) -> HmResult<Self> {
        let ranks = workload.ranks();
        let arbiter = NodeArbiter::new(cfg.policy, cfg.node_fast_budget, ranks);
        let mut shards = Vec::with_capacity(ranks as usize);
        let mut fast_tier = TierId::MCDRAM;
        for rank in 0..ranks {
            let w = workload.rank(rank);
            let p = provision(w, machine, arbiter.rank_cap())?;
            let mut shard_cfg = cfg.online.clone();
            shard_cfg.seed = cfg.online.seed + u64::from(rank);
            let rt = OnlineRuntime::new(machine, arbiter.partition_share(), shard_cfg);
            fast_tier = rt.fast_tier();
            let stream = w.stream(&p.ranges);
            let global_names = p
                .ids
                .iter()
                .filter_map(|id| {
                    let obj = p.heap.registry().get(*id)?;
                    Some((*id, format!("r{rank:04}/{}", obj.name)))
                })
                .collect();
            shards.push(Shard {
                rank,
                rt,
                heap: p.heap,
                stream,
                samples: Vec::new(),
                global_names,
                done: false,
            });
        }
        let global = matches!(cfg.policy, ArbiterPolicy::Global)
            .then(|| PlacementController::new(cfg.online.clone()));
        Ok(MultiRankRuntime {
            shards,
            arbiter,
            global,
            epoch_len: cfg.online.epoch_accesses,
            parallel: cfg.parallel,
            fast_tier,
            node_epochs: 0,
        })
    }

    /// The arbiter governing the node's fast tier.
    pub fn arbiter(&self) -> &NodeArbiter {
        &self.arbiter
    }

    /// Drive every shard to the end of its stream, arbitrating the fast
    /// tier at every epoch boundary, and return the outcome.
    pub fn run(mut self) -> MultiRankOutcome {
        while self.step() {}
        let policy = self.arbiter.policy();
        let fast_tier = self.fast_tier;
        let per_rank = self
            .shards
            .into_iter()
            .map(|s| RankOutcome {
                rank: s.rank,
                time: s.rt.total_time(),
                llc_misses: s.rt.engine_stats().counters.llc_misses,
                engine: s.rt.engine_stats().clone(),
                stats: s.rt.stats().clone(),
                fast_residency: s.heap.tier_occupancy(fast_tier),
            })
            .collect();
        MultiRankOutcome {
            policy,
            per_rank,
            node_epochs: self.node_epochs,
        }
    }

    /// One node epoch: parallel observation, serial arbitration. Returns
    /// `false` once every shard has drained its stream.
    fn step(&mut self) -> bool {
        let active: Vec<&mut Shard> = self.shards.iter_mut().filter(|s| !s.done).collect();
        if active.is_empty() {
            return false;
        }
        // Observation half: shards are independent; fan them out. Results
        // come back in input (= rank) order; each shard's samples land in
        // its own reused scratch buffer.
        let observe = |s: &mut Shard| {
            let consumed = s.rt.observe_epoch(&mut *s.stream, &s.heap, &mut s.samples);
            (s.rank, consumed)
        };
        let observed: Vec<(u32, u64)> = if self.parallel {
            parallel_map(active, observe)
        } else {
            active.into_iter().map(observe).collect()
        };
        if observed.iter().all(|(_, consumed)| *consumed == 0) {
            for s in &mut self.shards {
                s.done = true;
            }
            return false;
        }
        self.node_epochs += 1;

        // Arbitration half, serial and deterministic in rank order.
        if self.global.is_some() {
            self.commit_global(&observed);
        } else {
            self.commit_per_rank(&observed);
        }

        for (rank, consumed) in &observed {
            if *consumed < self.epoch_len {
                self.shards[*rank as usize].done = true;
            }
        }
        true
    }

    /// FCFS / partition commit: each shard plans with its own controller
    /// against the budget the arbiter hands it. Under FCFS earlier ranks'
    /// migrations are visible to later ranks' budgets — that *is* the
    /// first-come-first-served semantics.
    fn commit_per_rank(&mut self, observed: &[(u32, u64)]) {
        // Only FCFS budgets depend on who holds what; the snapshot must then
        // be retaken per rank, after the earlier ranks' commits. Partition
        // budgets are residency-independent, so skip the O(ranks²) walk.
        let fcfs = self.arbiter.policy() == ArbiterPolicy::Fcfs;
        for (rank, consumed) in observed {
            if *consumed == 0 {
                continue;
            }
            let residencies: Vec<ByteSize> = if fcfs {
                self.shards
                    .iter()
                    .map(|s| s.heap.tier_occupancy(self.fast_tier))
                    .collect()
            } else {
                Vec::new()
            };
            let budget = self.arbiter.epoch_budget(*rank, &residencies);
            let Shard {
                rt, heap, samples, ..
            } = &mut self.shards[*rank as usize];
            rt.set_fast_budget(budget);
            rt.commit_epoch(heap, *consumed, samples);
        }
    }

    /// Global commit: merge every rank's samples into one time-ordered
    /// stream, fold them into node-wide heat, run one selection spanning
    /// every rank's objects against the whole node budget, then execute the
    /// per-rank slices of the plan in rank order.
    fn commit_global(&mut self, observed: &[(u32, u64)]) {
        let controller = self.global.as_mut().expect("global controller present");

        // Per-rank sample streams, time-ordered across ranks by the k-way
        // merge (ties break by rank then arrival, so the fold order — and
        // with it the f64 heat accumulation — is deterministic).
        let shards = &self.shards;
        let inputs: Vec<(u32, _)> = observed
            .iter()
            .map(|(rank, _)| {
                (
                    *rank,
                    shards[*rank as usize].samples.iter().map(|s| {
                        Ok(TraceEvent::Sample(SampleRecord {
                            time: s.time,
                            address: s.address,
                            object: None,
                            weight: s.weight,
                            latency_cycles: s.latency_cycles,
                        }))
                    }),
                )
            })
            .collect();
        let merged = MergedStream::new(inputs).expect("in-memory streams cannot fail");
        for item in merged {
            let ranked = item.expect("in-memory streams cannot fail");
            let TraceEvent::Sample(s) = ranked.event else {
                continue;
            };
            let heap = &shards[ranked.rank as usize].heap;
            if let Some(obj) = heap.registry().find_containing(s.address) {
                controller.record(global_id(ranked.rank, obj.id), s.weight as f64);
            }
        }

        // Node-wide live snapshot. Finished shards are included: their
        // objects still occupy the fast tier and must stay demotable.
        let mut live: Vec<ObjectPlacement> = Vec::new();
        for s in shards {
            for mut o in ObjectPlacement::snapshot_live(&s.heap) {
                o.name = match s.global_names.get(&o.id) {
                    Some(prefixed) => prefixed.clone(),
                    None => format!("r{:04}/{}", s.rank, o.name),
                };
                o.id = global_id(s.rank, o.id);
                live.push(o);
            }
        }
        let plan = controller.end_epoch(&live, self.fast_tier, self.arbiter.node_budget());

        // Slice the node plan per rank, preserving the planner's order.
        let ranks = self.shards.len();
        let mut slices: Vec<EpochPlan> = (0..ranks).map(|_| EpochPlan::default()).collect();
        for id in &plan.demotions {
            let (rank, local) = split_global_id(*id);
            slices[rank as usize].demotions.push(local);
        }
        for id in &plan.promotions {
            let (rank, local) = split_global_id(*id);
            slices[rank as usize].promotions.push(local);
        }

        let mut consumed_of = vec![0u64; ranks];
        for (rank, consumed) in observed {
            consumed_of[*rank as usize] = *consumed;
        }
        for (rank, slice) in slices.iter().enumerate() {
            let consumed = consumed_of[rank];
            let Shard {
                rt, heap, samples, ..
            } = &mut self.shards[rank];
            if consumed > 0 {
                rt.commit_epoch_with_plan(heap, consumed, samples.len() as u64, slice);
            } else if !slice.is_empty() {
                // The shard's stream has drained but the node plan touches
                // its objects (demoting leftover residency to make room for
                // active ranks): execute as background housekeeping — no
                // phantom epoch, no charge on the finished rank's time.
                rt.commit_background_plan(heap, slice);
            }
        }
    }
}

/// Convenience driver: provision, run and return the outcome in one call.
pub fn run_multirank(
    workload: &MultiRankWorkload,
    machine: &MachineConfig,
    cfg: MultiRankConfig,
) -> HmResult<MultiRankOutcome> {
    Ok(MultiRankRuntime::new(workload, machine, cfg)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::loaded_machine;
    use hmsim_apps::PhasedWorkload;

    const ARRAY: ByteSize = ByteSize::from_kib(16);

    fn skew() -> MultiRankWorkload {
        MultiRankWorkload::rank_skew_triad(ARRAY, 4, 4, 30)
    }

    fn cfg(policy: ArbiterPolicy, budget: ByteSize) -> MultiRankConfig {
        MultiRankConfig::new(policy, budget)
            .with_online(OnlineConfig::default().with_epoch_accesses(8_192))
    }

    #[test]
    fn global_ids_round_trip() {
        for rank in [0u32, 1, 7, 63] {
            for id in [0u32, 1, 4_000_000] {
                let g = global_id(rank, ObjectId(id));
                assert_eq!(split_global_id(g), (rank, ObjectId(id)));
            }
        }
    }

    #[test]
    fn every_policy_respects_the_node_budget() {
        let m = loaded_machine();
        let w = skew();
        // Enough for the small ranks plus part of the dominant one.
        let budget = ByteSize::from_kib(288);
        for policy in ArbiterPolicy::ALL {
            let rt = MultiRankRuntime::new(&w, &m, cfg(policy, budget)).unwrap();
            let shards_occupancy = |rt: &MultiRankRuntime| -> u64 {
                rt.shards
                    .iter()
                    .map(|s| s.heap.tier_occupancy(TierId::MCDRAM).bytes())
                    .sum()
            };
            assert_eq!(shards_occupancy(&rt), 0);
            let out = rt.run();
            assert!(out.total_migrations() > 0, "{policy}: nothing migrated");
            assert!(out.per_rank.iter().all(|r| r.stats.rejected_moves == 0));
            // Re-run step by step to watch occupancy under the budget at
            // every epoch boundary.
            let mut rt = MultiRankRuntime::new(&w, &m, cfg(policy, budget)).unwrap();
            while rt.step() {
                let used = shards_occupancy(&rt);
                assert!(
                    used <= budget.bytes(),
                    "{policy}: node budget exceeded ({used} > {})",
                    budget.bytes()
                );
            }
        }
    }

    #[test]
    fn global_beats_partition_on_rank_skew() {
        let m = loaded_machine();
        let w = skew();
        let budget = ByteSize::from_kib(288);
        let partition = run_multirank(&w, &m, cfg(ArbiterPolicy::Partition, budget)).unwrap();
        let global = run_multirank(&w, &m, cfg(ArbiterPolicy::Global, budget)).unwrap();
        assert!(
            global.node_time() < partition.node_time(),
            "global {} vs partition {}",
            global.node_time(),
            partition.node_time()
        );
        // Identical simulated work whatever the policy.
        assert_eq!(
            partition
                .per_rank
                .iter()
                .map(|r| r.stats.accesses)
                .sum::<u64>(),
            global
                .per_rank
                .iter()
                .map(|r| r.stats.accesses)
                .sum::<u64>()
        );
    }

    #[test]
    fn replicated_ranks_under_partition_match_each_other() {
        let m = loaded_machine();
        let w = MultiRankWorkload::replicated(PhasedWorkload::steady_triad(ARRAY, 20), 3);
        let budget = w.node_hot_set();
        let out = run_multirank(&w, &m, cfg(ArbiterPolicy::Partition, budget)).unwrap();
        assert_eq!(out.per_rank.len(), 3);
        // Same workload, same share, same seed derivation modulo the
        // sampler offset: counters must agree exactly (the sampler does not
        // influence simulation), times within noise of each other.
        let c0 = &out.per_rank[0].engine.counters;
        for r in &out.per_rank[1..] {
            assert_eq!(&r.engine.counters, c0, "rank {} diverged", r.rank);
        }
        assert!(out.node_time() >= out.per_rank[0].time);
    }

    #[test]
    fn serial_and_parallel_fanout_are_bitwise_identical() {
        let m = loaded_machine();
        let w = skew();
        let budget = ByteSize::from_kib(288);
        for policy in ArbiterPolicy::ALL {
            let par = run_multirank(&w, &m, cfg(policy, budget)).unwrap();
            let ser = run_multirank(&w, &m, cfg(policy, budget).serial()).unwrap();
            assert_eq!(par.node_epochs, ser.node_epochs, "{policy}");
            for (a, b) in par.per_rank.iter().zip(&ser.per_rank) {
                assert_eq!(a.engine.counters, b.engine.counters, "{policy}");
                assert_eq!(a.stats.migrations, b.stats.migrations, "{policy}");
                assert_eq!(a.time, b.time, "{policy} rank {}", a.rank);
            }
        }
    }
}
