//! Tuning knobs of the online placement runtime.

use hmem_advisor::SelectionStrategy;

/// Configuration of the epoch-driven migration engine.
///
/// The hysteresis knobs exist to keep the control loop from thrashing:
/// `min_residency_epochs` forbids moving an object again right after it
/// moved, and `heat_deadband` makes incumbents sticky — a challenger must be
/// hotter than a fast-tier resident by that margin before it can displace it.
#[derive(Clone, Debug, PartialEq)]
pub struct OnlineConfig {
    /// Accesses simulated per epoch before the controller re-plans
    /// (trace-driven runtime only; the analytic path uses one application
    /// iteration as its epoch).
    pub epoch_accesses: u64,
    /// Maximum object migrations (promotions + demotions) per epoch.
    /// `0` disables migration entirely — the runtime then reproduces the
    /// static engine bit for bit.
    pub max_moves_per_epoch: u32,
    /// An object that migrated must stay put for this many epochs before it
    /// may move again.
    pub min_residency_epochs: u64,
    /// Fractional heat bonus granted to current fast-tier residents when the
    /// selection re-ranks objects (2.5 = a challenger needs 3.5× the heat of
    /// the incumbent it would displace). Together with a fast
    /// [`heat_decay`](Self::heat_decay) this is what separates a *phase
    /// change* (the old hot set stops missing entirely, so its decayed heat
    /// collapses within ~3 epochs and any real challenger overtakes it) from
    /// *scan aliasing* (a uniform scan sliced by epoch windows keeps
    /// re-touching every object, so incumbents never decay far enough to be
    /// displaced and the placement stays put).
    pub heat_deadband: f64,
    /// Per-epoch exponential decay of accumulated heat (0 = only the last
    /// epoch counts, 1 = infinite memory).
    pub heat_decay: f64,
    /// How the per-epoch selection ranks candidates — the advisor's own
    /// strategies, re-run online each epoch.
    pub strategy: SelectionStrategy,
    /// PEBS sampling period for the trace-driven runtime (events per
    /// sample). Trace epochs are small, so this is far below the paper's
    /// production period of 37 589.
    pub pebs_period: u64,
    /// Parallel copy streams the migration cost model credits to each move
    /// (page migration is a handful of helper threads, not the whole
    /// machine).
    pub migration_streams: u32,
    /// Seed for the sampler's randomized counter offset.
    pub seed: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            epoch_accesses: 65_536,
            max_moves_per_epoch: 8,
            min_residency_epochs: 3,
            heat_deadband: 2.5,
            heat_decay: 0.6,
            strategy: SelectionStrategy::Density,
            pebs_period: 257,
            migration_streams: 2,
            seed: 0x0E11_0C47,
        }
    }
}

impl OnlineConfig {
    /// A configuration with migrations disabled (the equivalence baseline).
    pub fn disabled() -> Self {
        OnlineConfig {
            max_moves_per_epoch: 0,
            ..OnlineConfig::default()
        }
    }

    /// Whether this configuration can ever move an object.
    pub fn migrations_enabled(&self) -> bool {
        self.max_moves_per_epoch > 0
    }

    /// Override the epoch length.
    pub fn with_epoch_accesses(mut self, accesses: u64) -> Self {
        self.epoch_accesses = accesses.max(1);
        self
    }

    /// Override the per-epoch move budget.
    pub fn with_moves_per_epoch(mut self, moves: u32) -> Self {
        self.max_moves_per_epoch = moves;
        self
    }

    /// Override the selection strategy.
    pub fn with_strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_and_disabled_zeroes_moves() {
        let cfg = OnlineConfig::default();
        assert!(cfg.migrations_enabled());
        assert!(cfg.heat_decay > 0.0 && cfg.heat_decay < 1.0);
        assert!(cfg.heat_deadband > 0.0);
        assert!(cfg.min_residency_epochs >= 1);
        let off = OnlineConfig::disabled();
        assert!(!off.migrations_enabled());
        assert_eq!(
            OnlineConfig::default()
                .with_epoch_accesses(0)
                .epoch_accesses,
            1
        );
    }
}
