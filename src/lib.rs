//! # hmem-repro
//!
//! Umbrella crate of the reproduction of Servat et al., *Automating the
//! Application Data Placement in Hybrid Memory Systems* (IEEE CLUSTER 2017).
//!
//! Everything lives in the workspace crates; this crate re-exports them under
//! one roof so the examples, the integration tests and downstream users can
//! depend on a single name:
//!
//! * [`machine`] — the KNL-like hybrid-memory machine model;
//! * [`callstack`], [`heap`], [`trace`], [`pebs`] — the system substrates
//!   (call-stack/ASLR machinery, simulated process heap, Paraver-like traces,
//!   PEBS sampling);
//! * [`profiler`] (Extrae), [`analysis`] (Paramedir), [`advisor`]
//!   (hmem_advisor) and [`autohbw`] (auto-hbwmalloc) — the four framework
//!   stages;
//! * [`apps`] — the eight workload models plus STREAM and the phase-shifting
//!   trace workloads;
//! * [`runtime`] — the online placement runtime (epoch-driven PEBS-guided
//!   object migration);
//! * [`core`] — the end-to-end pipeline, the experiment grid and the
//!   figure/table generators — plus the scenario layer: declarative,
//!   serializable [`core::Scenario`] sessions (`.scn` files under
//!   `scenarios/`) dispatched through the [`core::Simulation`] facade to
//!   whichever execution engine the scenario selects.
//!
//! See `examples/quickstart.rs` for the 30-second tour and
//! `examples/run_scenario.rs` for the scenario-file front door.

#![warn(missing_docs)]

pub use auto_hbwmalloc as autohbw;
pub use hmem_advisor as advisor;
pub use hmem_core as core;
pub use hmsim_analysis as analysis;
pub use hmsim_apps as apps;
pub use hmsim_callstack as callstack;
pub use hmsim_common as common;
pub use hmsim_heap as heap;
pub use hmsim_machine as machine;
pub use hmsim_pebs as pebs;
pub use hmsim_profiler as profiler;
pub use hmsim_runtime as runtime;
pub use hmsim_trace as trace;
