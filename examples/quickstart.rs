//! Quickstart: run the complete four-stage framework (profile → analyse →
//! advise → re-run) for one application and print what each stage produced.
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- HPCG 128M
//! ```

use hmem_repro::advisor::SelectionStrategy;
use hmem_repro::apps::app_by_name;
use hmem_repro::autohbw::RouterFactory;
use hmem_repro::common::ByteSize;
use hmem_repro::core::pipeline::FrameworkPipeline;
use hmem_repro::core::simrun::{AppRun, RunConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app_name = args.get(1).map(String::as_str).unwrap_or("miniFE");
    let budget = args
        .get(2)
        .map(|s| ByteSize::parse(s).expect("budget like 128M"))
        .unwrap_or(ByteSize::from_mib(128));

    let spec = app_by_name(app_name).unwrap_or_else(|| {
        eprintln!("unknown application {app_name}; try HPCG, Lulesh, BT, miniFE, CGPOP, SNAP, MAXW-DGTD or GTC-P");
        std::process::exit(1);
    });

    println!(
        "Application      : {} ({} ranks x {} threads, {})",
        spec.name, spec.ranks, spec.threads_per_rank, spec.problem_size
    );
    println!("MCDRAM budget    : {budget} per rank");
    println!(
        "Footprint        : {:.0} MiB per rank\n",
        spec.footprint().mib()
    );

    // Reference run: everything in DDR.
    let ddr = AppRun::new(&spec, RunConfig::flat(budget).with_iterations(10))
        .execute(RouterFactory::ddr().unwrap())
        .expect("DDR run succeeds");
    println!(
        "[reference] DDR-only FOM          : {:.2} {}",
        ddr.fom, spec.fom_name
    );

    // The framework: profile, analyse, advise, re-run.
    let pipeline = FrameworkPipeline::new(
        budget,
        SelectionStrategy::Misses {
            threshold_percent: 0.0,
        },
    )
    .with_iterations(10);
    let outcome = pipeline.run(&spec).expect("pipeline succeeds");

    println!("[stage 1] profiling trace         : {} allocation events, {} PEBS samples ({:.2}% overhead)",
        outcome.trace_summary.allocations,
        outcome.trace_summary.samples,
        outcome.profiling_overhead * 100.0);
    println!(
        "[stage 2] objects analysed        : {} ({} total sampled misses)",
        outcome.object_report.objects.len(),
        outcome.object_report.total_misses
    );
    println!("[stage 3] advisor selection       :");
    for entry in outcome.placement.automatic_entries() {
        println!(
            "            -> {} ({}, {} misses) to {}",
            entry.name, entry.size, entry.llc_misses, entry.tier_name
        );
    }
    for entry in outcome.placement.manual_entries() {
        println!(
            "            (manual suggestion: {} is {} and cannot be promoted automatically)",
            entry.name, entry.size
        );
    }
    println!("[stage 4] re-run with auto-hbwmalloc:");
    println!(
        "            FOM                   : {:.2} {}",
        outcome.result.fom, spec.fom_name
    );
    println!(
        "            speedup vs DDR        : {:.2}x",
        outcome.result.fom / ddr.fom
    );
    println!(
        "            MCDRAM HWM            : {:.1} MiB",
        outcome.result.mcdram_hwm.mib()
    );
    println!(
        "            interposition overhead: {}",
        outcome.result.allocator_time
    );
}
