//! Quickstart: run the complete four-stage framework (profile → analyse →
//! advise → re-run) for one application through the `Simulation` facade and
//! print what each stage produced.
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- HPCG 128M
//! ```

use hmem_repro::advisor::SelectionStrategy;
use hmem_repro::apps::app_by_name;
use hmem_repro::autohbw::PlacementApproach;
use hmem_repro::common::ByteSize;
use hmem_repro::core::{Scenario, Simulation};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app_name = args.get(1).map(String::as_str).unwrap_or("miniFE");
    let budget = args
        .get(2)
        .map(|s| ByteSize::parse(s).expect("budget like 128M"))
        .unwrap_or(ByteSize::from_mib(128));

    // The registry lookup is case-insensitive and the error already lists
    // every known application, so it is printable as-is.
    let spec = app_by_name(app_name).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });

    println!(
        "Application      : {} ({} ranks x {} threads, {})",
        spec.name, spec.ranks, spec.threads_per_rank, spec.problem_size
    );
    println!("MCDRAM budget    : {budget} per rank");
    println!(
        "Footprint        : {:.0} MiB per rank\n",
        spec.footprint().mib()
    );

    let simulation = Simulation::new();

    // Reference run: everything in DDR. One declarative scenario, one call.
    let ddr_scenario =
        Scenario::app(spec.name, PlacementApproach::DdrOnly, budget).with_iterations(10);
    let ddr = simulation.run(&ddr_scenario).expect("DDR run succeeds");
    println!(
        "[reference] DDR-only FOM          : {:.2} {}",
        ddr.node.fom, spec.fom_name
    );

    // The framework: the same facade runs the whole profile → analyse →
    // advise → re-run pipeline when the approach embeds a strategy.
    let fw_scenario = Scenario::app(
        spec.name,
        PlacementApproach::framework(SelectionStrategy::Misses {
            threshold_percent: 0.0,
        }),
        budget,
    )
    .with_iterations(10);
    println!("(scenario file form:)\n{}", fw_scenario.serialize());
    let outcome = simulation.run(&fw_scenario).expect("pipeline succeeds");
    let stages = outcome.framework.as_ref().expect("pipeline artefacts");

    println!("[stage 1] profiling trace         : {} allocation events, {} PEBS samples ({:.2}% overhead)",
        stages.trace_summary.allocations,
        stages.trace_summary.samples,
        stages.profiling_overhead * 100.0);
    println!(
        "[stage 2] objects analysed        : {} ({} total sampled misses)",
        stages.object_report.objects.len(),
        stages.object_report.total_misses
    );
    println!("[stage 3] advisor selection       :");
    for entry in stages.placement.automatic_entries() {
        println!(
            "            -> {} ({}, {} misses) to {}",
            entry.name, entry.size, entry.llc_misses, entry.tier_name
        );
    }
    for entry in stages.placement.manual_entries() {
        println!(
            "            (manual suggestion: {} is {} and cannot be promoted automatically)",
            entry.name, entry.size
        );
    }
    let result = outcome.result();
    println!("[stage 4] re-run with auto-hbwmalloc:");
    println!(
        "            FOM                   : {:.2} {}",
        result.fom, spec.fom_name
    );
    println!(
        "            speedup vs DDR        : {:.2}x",
        result.fom / ddr.node.fom
    );
    println!(
        "            MCDRAM HWM            : {:.1} MiB",
        result.mcdram_hwm.mib()
    );
    println!(
        "            interposition overhead: {}",
        result.allocator_time
    );
}
