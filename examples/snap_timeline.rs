//! Regenerate Figure 5: SNAP's folded main-iteration timeline under the
//! framework and under `numactl -p 1`, showing that `outer_src_calc` loses
//! MIPS under the framework because its register-spill stack data cannot be
//! promoted to MCDRAM.
//!
//! ```bash
//! cargo run --release --example snap_timeline
//! ```

use hmem_repro::core::figures;

fn main() {
    let data = figures::figure5(8, 20).expect("figure 5 generation succeeds");

    println!(
        "SNAP folded iteration ({} instances averaged, mean duration {})\n",
        data.framework.instances, data.framework.mean_duration
    );

    println!(
        "{:<20} {:>18} {:>18} {:>8}",
        "kernel", "framework MIPS", "numactl MIPS", "ratio"
    );
    for (name, fw, nu) in &data.kernel_mips {
        println!("{name:<20} {fw:>18.1} {nu:>18.1} {:>8.2}", fw / nu);
    }

    println!("\nFolded MIPS over one iteration (normalised time):");
    println!(
        "{:>6} {:>14} {:>14}   dominant routine (framework)",
        "t", "framework", "numactl"
    );
    for (fw_bin, nu_bin) in data.framework.bins.iter().zip(data.numactl.bins.iter()) {
        println!(
            "{:>6.2} {:>14.1} {:>14.1}   {}",
            fw_bin.position,
            fw_bin.mips,
            nu_bin.mips,
            fw_bin.dominant_routine.as_deref().unwrap_or("-")
        );
    }

    if let Some(slowest) = data.framework.slowest_bin() {
        println!(
            "\nSlowest framework bin sits at t={:.2} inside {:?} — the outer_src_calc dip of the paper's Figure 5.",
            slowest.position, slowest.dominant_routine
        );
    }
}
