//! Regenerate Figure 1: STREAM Triad bandwidth versus core count for data in
//! DDR, in flat-mode MCDRAM and with MCDRAM configured as a cache.
//!
//! ```bash
//! cargo run --release --example stream_bandwidth
//! ```

use hmem_repro::apps::StreamBenchmark;
use hmem_repro::machine::MachineConfig;

fn main() {
    let machine = MachineConfig::knl_7250();
    let stream = StreamBenchmark::default();

    println!(
        "STREAM Triad on the simulated Xeon Phi 7250 ({} cores @ {:.2} GHz)",
        machine.cores,
        machine.frequency_hz / 1e9
    );
    println!(
        "working set: {} ({} per array)\n",
        stream.working_set(),
        stream.array_size
    );
    println!(
        "{:>6}  {:>10}  {:>14}  {:>15}",
        "cores", "DDR GB/s", "MCDRAM/Flat", "MCDRAM/Cache"
    );
    for (cores, ddr, flat, cache) in stream.figure1(&machine) {
        let bar = |v: f64| "#".repeat((v / 12.0).round() as usize);
        println!(
            "{cores:>6}  {ddr:>10.1}  {flat:>14.1}  {cache:>15.1}   |{}",
            bar(flat)
        );
    }

    let last = stream.figure1(&machine).last().copied().unwrap();
    println!("\nAt {} cores: flat MCDRAM sustains {:.1}x the DDR bandwidth; cache mode reaches {:.0}% of flat.",
        last.0, last.2 / last.1, 100.0 * last.3 / last.2);
}
