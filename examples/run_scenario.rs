//! Load and execute declarative `.scn` scenario files through the
//! [`Simulation`] facade — the one-command front door to every simulation
//! path (analytic approaches, the four-stage framework pipeline, the online
//! migration runtime and the multi-rank sharded runtime).
//!
//! ```bash
//! cargo run --release --example run_scenario                         # every scenarios/*.scn
//! cargo run --release --example run_scenario -- scenarios/minife-framework.scn
//! ```
//!
//! Exits non-zero if any scenario fails to parse, validate or run, which is
//! what makes this binary CI's scenario smoke check.

use hmem_repro::core::{Outcome, Scenario, Simulation};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<std::path::PathBuf> = if args.is_empty() {
        let dir = std::path::Path::new("scenarios");
        let mut found: Vec<_> = match std::fs::read_dir(dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().map(|x| x == "scn").unwrap_or(false))
                .collect(),
            Err(e) => {
                eprintln!("cannot list {}: {e}", dir.display());
                std::process::exit(1);
            }
        };
        found.sort();
        found
    } else {
        args.iter().map(std::path::PathBuf::from).collect()
    };
    if paths.is_empty() {
        eprintln!("no .scn files found");
        std::process::exit(1);
    }

    let mut failures = 0usize;
    for path in &paths {
        match Scenario::load(path).and_then(|s| Simulation::new().run(&s)) {
            Ok(outcome) => report(path, &outcome),
            Err(e) => {
                eprintln!("{}: FAILED: {e}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("\n{failures}/{} scenarios failed", paths.len());
        std::process::exit(1);
    }
    println!("\nall {} scenarios ran", paths.len());
}

fn report(path: &std::path::Path, outcome: &Outcome) {
    println!(
        "{:<40} [{}] fom {:>12.2}  time {}  misses {}  migrations {}  mcdram {:.1} MiB  ranks {}",
        format!("{} ({})", outcome.scenario, path.display()),
        outcome.approach,
        outcome.node.fom,
        outcome.node.time,
        outcome.node.llc_misses,
        outcome.node.migrations,
        outcome.node.mcdram_hwm.mib(),
        outcome.per_rank.len(),
    );
    if let Some(fw) = &outcome.framework {
        let selected: Vec<&str> = fw
            .placement
            .automatic_entries()
            .map(|e| e.name.as_str())
            .collect();
        println!(
            "{:<40}   pipeline: {} samples -> advisor selected {}",
            "",
            fw.trace_summary.samples,
            selected.join(", ")
        );
    }
}
