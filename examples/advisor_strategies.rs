//! Compare the advisor's selection strategies (Misses with 0/1/5 % thresholds,
//! Density, and the exact knapsack) on one application's profile, across the
//! paper's MCDRAM budgets — without re-running the application.
//!
//! ```bash
//! cargo run --release --example advisor_strategies -- SNAP
//! ```

use hmem_repro::advisor::{Advisor, MemorySpec, SelectionStrategy};
use hmem_repro::analysis::analyze_trace;
use hmem_repro::apps::app_by_name;
use hmem_repro::autohbw::PlacementApproach;
use hmem_repro::common::ByteSize;
use hmem_repro::core::{Scenario, Simulation};
use hmem_repro::profiler::ProfilerConfig;

fn main() {
    let app_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "SNAP".to_string());
    let spec = app_by_name(&app_name).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });

    // Profile once: a declarative DDR scenario with Extrae attached.
    let scenario = Scenario::app(
        spec.name,
        PlacementApproach::DdrOnly,
        ByteSize::from_mib(256),
    )
    .with_iterations(10)
    .with_profiling(ProfilerConfig::default());
    let outcome = Simulation::new()
        .run(&scenario)
        .expect("profiling run succeeds");
    let report = analyze_trace(outcome.result().trace.as_ref().unwrap());

    println!(
        "Profile of {}: {} objects, {} sampled LLC misses\n",
        spec.name,
        report.objects.len(),
        report.total_misses
    );
    println!(
        "{:<28} {:>10} {:>12} {:>8}",
        "object", "size", "misses", "kind"
    );
    for o in &report.objects {
        println!(
            "{:<28} {:>10} {:>12} {:>8}",
            o.name,
            o.max_size.to_string(),
            o.llc_misses,
            o.kind.code()
        );
    }

    let strategies = [
        SelectionStrategy::Misses {
            threshold_percent: 0.0,
        },
        SelectionStrategy::Misses {
            threshold_percent: 1.0,
        },
        SelectionStrategy::Misses {
            threshold_percent: 5.0,
        },
        SelectionStrategy::Density,
        SelectionStrategy::ExactKnapsack,
    ];
    for budget_mib in [32u64, 64, 128, 256] {
        let memspec = MemorySpec::knl_budget(ByteSize::from_mib(budget_mib));
        println!("\n== MCDRAM budget {budget_mib} MiB/rank ==");
        for strategy in strategies {
            match Advisor::new().advise(&report, &memspec, strategy) {
                Ok(placement) => {
                    let selected: Vec<&str> = placement
                        .automatic_entries()
                        .map(|e| e.name.as_str())
                        .collect();
                    let covered: u64 = placement.automatic_entries().map(|e| e.llc_misses).sum();
                    println!(
                        "  {:<14} uses {:>7.1} MiB, covers {:>5.1}% of misses: {}",
                        strategy.label(),
                        placement
                            .selected_bytes(hmem_repro::common::TierId::MCDRAM)
                            .mib(),
                        100.0 * covered as f64 / report.total_misses.max(1) as f64,
                        selected.join(", ")
                    );
                }
                Err(e) => println!("  {:<14} not applicable: {e}", strategy.label()),
            }
        }
    }
}
