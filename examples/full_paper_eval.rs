//! Regenerate the paper's full evaluation: Figure 1, Figure 3, Table I,
//! Figure 4 (all three columns for all eight applications) and the Figure-5
//! kernel breakdown, printing everything as text tables.
//!
//! ```bash
//! cargo run --release --example full_paper_eval            # quick settings
//! cargo run --release --example full_paper_eval -- --full  # full iteration counts
//! ```
//!
//! Every configuration of the Figure-4 grid is a declarative `Scenario`
//! dispatched through the `Simulation` facade; to run a single configuration
//! instead of the whole evaluation, write it as a `.scn` file and use
//! `cargo run --release --example run_scenario -- <file>`.

use hmem_repro::core::experiment::{run_full_evaluation, ExperimentConfig};
use hmem_repro::core::figures;
use hmem_repro::core::report;

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    println!("==============================================================");
    println!(" Figure 1: STREAM Triad bandwidth vs. cores (GB/s)");
    println!("==============================================================");
    println!("{}", report::render_figure1(&figures::figure1()));

    println!("==============================================================");
    println!(" Figure 3: call-stack unwind vs. translation cost");
    println!("==============================================================");
    println!("{}", report::render_figure3(&figures::figure3()));

    println!("==============================================================");
    println!(" Table I: application characteristics (measured)");
    println!("==============================================================");
    let table1_iters = if full { None } else { Some(5) };
    match figures::table1(table1_iters) {
        Ok(rows) => println!("{}", report::render_table1(&rows)),
        Err(e) => eprintln!("Table I generation failed: {e}"),
    }

    println!("==============================================================");
    println!(" Figure 4: placement approaches per application");
    println!("==============================================================");
    let mut config = ExperimentConfig::default();
    if full {
        config.iterations_override = None;
    }
    let experiments = run_full_evaluation(&config);
    for exp in &experiments {
        println!("{}", report::render_app_experiment(exp));
        if let (Some(best), Some(cache), Some(numactl)) = (
            exp.best_framework(),
            exp.baseline("Cache"),
            exp.baseline("MCDRAM*"),
        ) {
            println!(
                "  summary: best framework {:.3}x | cache {:.3}x | numactl {:.3}x | winner: {}\n",
                best.fom / exp.ddr_fom,
                cache.fom / exp.ddr_fom,
                numactl.fom / exp.ddr_fom,
                exp.winner().map(|w| w.label.as_str()).unwrap_or("?"),
            );
        }
    }

    println!("==============================================================");
    println!(" Figure 5: SNAP folded iteration (framework vs numactl)");
    println!("==============================================================");
    match figures::figure5(if full { 20 } else { 6 }, 16) {
        Ok(data) => {
            println!("kernel MIPS (framework / numactl):");
            for (name, fw, nu) in &data.kernel_mips {
                println!(
                    "  {name:<18} {fw:>10.1}  /  {nu:>10.1}   (ratio {:.2})",
                    fw / nu
                );
            }
            println!("\nfolded MIPS profile (framework):");
            for (pos, mips) in data.framework.mips_series() {
                println!("  t={pos:.2}  {mips:>10.1} MIPS");
            }
        }
        Err(e) => eprintln!("Figure 5 generation failed: {e}"),
    }
}
